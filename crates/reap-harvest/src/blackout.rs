//! Harvest blackout injection: a seeded overlay that zeroes contiguous
//! windows of an inner source's output.
//!
//! Deployed harvesters lose whole stretches of input — a wearable left
//! in a drawer, a solar cell shadowed by a parked truck, a TEG off the
//! wrist. [`BlackoutOverlay`] models those outages as one contiguous
//! window per day whose start hour is drawn deterministically from a
//! seed, so fleet robustness experiments are exactly reproducible: the
//! same `(seed, fraction)` pair blacks out the same hours every run.

use reap_units::Energy;

use crate::error::HarvestError;
use crate::source::HarvestSource;

/// Wraps any [`HarvestSource`] and zeroes a seeded contiguous window of
/// hours on every day — `round(fraction * 24)` hours per day, window
/// start drawn per-day from the seed (wrapping past midnight).
///
/// The overlay composes with [`HarvestSource::generate`] unchanged, so
/// traces built through it stay valid (finite, non-negative) whenever
/// the inner source's are.
///
/// ```
/// use reap_harvest::{BlackoutOverlay, HarvestSource, SourceKind};
///
/// let inner = SourceKind::BodyHeat.instantiate(7);
/// let dark = BlackoutOverlay::new(inner, 42, 0.30).unwrap();
/// // 30% of 24 hours -> 7 blacked-out hours on every day.
/// let blacked = (0..24)
///     .filter(|&h| dark.hourly_energy(244, 0, h).joules() == 0.0)
///     .count();
/// assert_eq!(blacked, 7);
/// ```
pub struct BlackoutOverlay {
    inner: Box<dyn HarvestSource>,
    seed: u64,
    /// Blacked-out hours per day, `0..=24`.
    window_hours: u32,
}

impl BlackoutOverlay {
    /// Wraps `inner` so that `round(fraction * 24)` hours of every day
    /// harvest exactly zero.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when `fraction` is not a
    /// finite value in `[0, 1]`.
    pub fn new(
        inner: Box<dyn HarvestSource>,
        seed: u64,
        fraction: f64,
    ) -> Result<Self, HarvestError> {
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(HarvestError::InvalidParameter(format!(
                "blackout fraction {fraction} outside [0, 1]"
            )));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let window_hours = (fraction * 24.0).round() as u32;
        Ok(Self {
            inner,
            seed,
            window_hours,
        })
    }

    /// The number of hours blacked out on every day.
    pub fn window_hours(&self) -> u32 {
        self.window_hours
    }

    /// The window's start hour (0-23) on trace day `day_index`.
    fn window_start(&self, day_index: u32) -> u32 {
        (splitmix64(
            self.seed ^ (u64::from(day_index).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ) % 24) as u32
    }

    /// `true` when `hour` of trace day `day_index` falls inside the
    /// day's blackout window (windows wrap past midnight into the same
    /// day's early hours, keeping every day's outage exactly
    /// [`window_hours`](Self::window_hours) long).
    pub fn is_blacked_out(&self, day_index: u32, hour: u32) -> bool {
        if self.window_hours == 0 {
            return false;
        }
        if self.window_hours >= 24 {
            return true;
        }
        let start = self.window_start(day_index);
        let offset = (hour + 24 - start) % 24;
        offset < self.window_hours
    }
}

impl HarvestSource for BlackoutOverlay {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn hourly_energy(&self, day_of_year: u32, day_index: u32, hour: u32) -> Energy {
        if self.is_blacked_out(day_index, hour % 24) {
            Energy::ZERO
        } else {
            self.inner.hourly_energy(day_of_year, day_index, hour)
        }
    }

    fn is_photovoltaic(&self) -> bool {
        self.inner.is_photovoltaic()
    }
}

/// The splitmix64 finalizer (same mixing the fault plan and the trace
/// perturbations use).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceKind;

    fn body_heat(seed: u64, fraction: f64) -> BlackoutOverlay {
        BlackoutOverlay::new(SourceKind::BodyHeat.instantiate(seed), seed, fraction)
            .expect("valid overlay")
    }

    #[test]
    fn fraction_is_validated() {
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(BlackoutOverlay::new(SourceKind::BodyHeat.instantiate(1), 1, bad).is_err());
        }
        for ok in [0.0, 0.5, 1.0] {
            assert!(BlackoutOverlay::new(SourceKind::BodyHeat.instantiate(1), 1, ok).is_ok());
        }
    }

    #[test]
    fn every_day_loses_exactly_the_window_and_it_is_contiguous_mod_24() {
        let dark = body_heat(3, 0.30);
        assert_eq!(dark.window_hours(), 7);
        for day in 0..60 {
            let blacked: Vec<u32> = (0..24).filter(|&h| dark.is_blacked_out(day, h)).collect();
            assert_eq!(blacked.len(), 7, "day {day}");
            // Contiguous mod 24: exactly one wrap-around gap between
            // consecutive blacked hours (treating the set cyclically).
            let gaps = (0..blacked.len())
                .filter(|&i| {
                    let next = blacked[(i + 1) % blacked.len()];
                    (next + 24 - blacked[i]) % 24 != 1
                })
                .count();
            assert_eq!(gaps, 1, "day {day}: window not contiguous: {blacked:?}");
        }
    }

    #[test]
    fn window_start_varies_by_day_and_is_seed_deterministic() {
        let a = body_heat(9, 0.25);
        let b = body_heat(9, 0.25);
        let starts: Vec<u32> = (0..30).map(|d| a.window_start(d)).collect();
        assert_eq!(
            starts,
            (0..30).map(|d| b.window_start(d)).collect::<Vec<_>>()
        );
        // Not all days share one start hour (the seed spreads windows).
        assert!(starts.iter().any(|&s| s != starts[0]));
    }

    #[test]
    fn blacked_hours_are_zero_and_the_rest_match_the_inner_source() {
        let inner = SourceKind::BodyHeat.instantiate(11);
        let dark = body_heat(11, 0.30);
        for day in 0..7 {
            for hour in 0..24 {
                let got = dark.hourly_energy(244 + day, day, hour);
                if dark.is_blacked_out(day, hour) {
                    assert_eq!(got.joules(), 0.0);
                } else {
                    assert_eq!(
                        got.joules(),
                        inner.hourly_energy(244 + day, day, hour).joules()
                    );
                }
            }
        }
    }

    #[test]
    fn edge_fractions_black_out_nothing_or_everything() {
        let none = body_heat(5, 0.0);
        let all = body_heat(5, 1.0);
        for hour in 0..24 {
            assert!(!none.is_blacked_out(0, hour));
            assert!(all.is_blacked_out(0, hour));
            assert_eq!(all.hourly_energy(244, 0, hour).joules(), 0.0);
        }
    }

    #[test]
    fn generated_traces_stay_valid_and_lose_energy() {
        let inner = SourceKind::OutdoorSolar
            .instantiate(2)
            .generate(244, 10)
            .unwrap();
        let dark = body_heat_like_solar();
        let trace = dark.generate(244, 10).expect("overlay trace generates");
        assert_eq!(trace.days(), 10);
        assert!(trace
            .iter()
            .all(|e| e.joules().is_finite() && e.joules() >= 0.0));
        assert!(trace.total() < inner.total());
    }

    fn body_heat_like_solar() -> BlackoutOverlay {
        BlackoutOverlay::new(SourceKind::OutdoorSolar.instantiate(2), 2, 0.30)
            .expect("valid overlay")
    }
}
