//! Energy-harvesting substrate: solar irradiance, panel, battery, and
//! hourly budget allocation.
//!
//! The paper evaluates REAP with solar-radiation measurements from the
//! NREL Solar Radiation Research Laboratory (Golden, Colorado) converted
//! into hourly energy budgets for a flexible solar cell on the wearable
//! prototype. Those traces are not bundled here, so this crate provides a
//! **synthetic substitute** with the same structure:
//!
//! * [`SolarModel`] — clear-sky global horizontal irradiance from solar
//!   geometry (declination, hour angle, air mass) at Golden's latitude;
//! * [`WeatherModel`] — a seeded per-day Markov chain over sky conditions
//!   with hourly attenuation noise, producing realistic clear/cloudy-day
//!   dispersion;
//! * [`SolarPanel`] — an SP3-37-class flexible panel with a wearable
//!   derating factor calibrated so hourly harvests span the paper's
//!   0.18–10 J evaluation regime;
//! * [`HarvestTrace`] — e.g. [`HarvestTrace::september_like`] for the
//!   month Fig. 7 uses;
//! * [`Battery`] and [`BudgetAllocator`] implementations that turn
//!   harvests into per-period energy budgets (Kansal-style EWMA, greedy,
//!   and uniform-daily policies).
//!
//! # Examples
//!
//! ```
//! use reap_harvest::HarvestTrace;
//!
//! let trace = HarvestTrace::september_like(7);
//! assert_eq!(trace.days(), 30);
//! // Nights harvest nothing; clear noons harvest several joules.
//! assert_eq!(trace.energy(0, 0).joules(), 0.0);
//! assert!(trace.peak().joules() > 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod battery;
mod error;
mod panel;
mod solar;
mod trace;

pub use allocator::{BudgetAllocator, EwmaAllocator, GreedyAllocator, UniformDailyAllocator};
pub use battery::Battery;
pub use error::HarvestError;
pub use panel::SolarPanel;
pub use solar::{SkyCondition, SolarModel, WeatherModel};
pub use trace::HarvestTrace;
