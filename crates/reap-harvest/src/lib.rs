//! Energy-harvesting substrate: multi-source harvest models, battery, and
//! hourly budget allocation.
//!
//! The paper evaluates REAP with solar-radiation measurements from the
//! NREL Solar Radiation Research Laboratory (Golden, Colorado) converted
//! into hourly energy budgets for a flexible solar cell on the wearable
//! prototype. Those traces are not bundled here, so this crate provides
//! **synthetic substitutes** — and goes beyond the paper's single solar
//! trace: every transducer model implements the [`HarvestSource`] trait,
//! and four calibrated sources ship in the box ([`SourceKind`]):
//!
//! * [`SolarSource`] — outdoor solar: clear-sky global horizontal
//!   irradiance from solar geometry ([`SolarModel`]) attenuated by a
//!   seeded per-day Markov weather chain ([`WeatherModel`]) and converted
//!   by an SP3-37-class flexible panel ([`SolarPanel`]) — the paper's
//!   Fig. 7 setting;
//! * [`IndoorPhotovoltaic`] — an indoor cell under an office-lighting
//!   duty cycle (weekday lights-on hours, occupancy jitter, dark nights);
//! * [`BodyHeatTeg`] — a thermoelectric generator against body heat,
//!   coupled to the wearer's activity routine (higher ΔT when walking or
//!   driving) and to the season;
//! * [`KineticHarvester`] — a piezo/electromagnetic motion harvester
//!   whose output scales with the mean-square motion intensity of the
//!   activity stream.
//!
//! Every source yields [`HarvestTrace`]s — e.g.
//! [`HarvestTrace::september_like`] for the solar month Fig. 7 uses — and
//! each is calibrated so its useful hours land inside the paper's
//! 0.18–10 J evaluation regime. [`Battery`] and [`BudgetAllocator`]
//! implementations turn harvests into per-period energy budgets
//! (Kansal-style EWMA, greedy, and uniform-daily policies), and
//! [`HarvestForecaster`] implementations produce the multi-hour
//! forecast windows lookahead (receding-horizon) policies consume —
//! a causal per-slot EWMA projection and a seeded noisy oracle.
//!
//! # Examples
//!
//! ```
//! use reap_harvest::{HarvestSource, HarvestTrace, SourceKind};
//!
//! // The paper's solar month…
//! let solar = HarvestTrace::september_like(7);
//! assert_eq!(solar.days(), 30);
//! // Nights harvest nothing; clear noons harvest several joules.
//! assert_eq!(solar.energy(0, 0).joules(), 0.0);
//! assert!(solar.peak().joules() > 5.0);
//!
//! // …and the same month on a body-heat TEG: a fraction of the energy,
//! // but it never goes fully dark.
//! let teg = SourceKind::BodyHeat.instantiate(7).generate(244, 30).unwrap();
//! assert!(teg.total() < solar.total());
//! assert!(teg.iter().all(|e| e.joules() > 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod battery;
mod blackout;
mod capacitor;
mod error;
mod forecast;
mod indoor;
mod kinetic;
mod panel;
mod perturb;
mod solar;
mod source;
mod thermoelectric;
mod trace;

pub use allocator::{BudgetAllocator, EwmaAllocator, GreedyAllocator, UniformDailyAllocator};
pub use battery::Battery;
pub use blackout::BlackoutOverlay;
pub use capacitor::Capacitor;
pub use error::HarvestError;
pub use forecast::{DiurnalEwma, EwmaForecaster, HarvestForecaster, OracleForecaster};
pub use indoor::IndoorPhotovoltaic;
pub use kinetic::KineticHarvester;
pub use panel::SolarPanel;
pub use perturb::TracePerturbation;
pub use solar::{SkyCondition, SolarModel, SolarSource, WeatherModel};
pub use source::{HarvestSource, SourceKind};
pub use thermoelectric::BodyHeatTeg;
pub use trace::HarvestTrace;
