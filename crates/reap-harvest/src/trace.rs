//! Hourly harvest traces.

use reap_units::Energy;

use crate::{HarvestError, HarvestSource, SolarModel, SolarPanel, SolarSource, WeatherModel};

/// A contiguous sequence of hourly harvested energies, starting at
/// midnight of a given day of year.
///
/// This is the synthetic stand-in for the paper's NREL SRRL measurement
/// traces: every hour `h` of every day `d` has the energy the wearable's
/// transducer harvested during that hour. Traces are source-agnostic —
/// any [`HarvestSource`] (outdoor solar, indoor photovoltaic,
/// thermoelectric, kinetic) produces them via
/// [`HarvestSource::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct HarvestTrace {
    start_day_of_year: u32,
    hourly: Vec<Energy>,
}

impl HarvestTrace {
    /// Wraps raw hourly energies (must be a whole number of days).
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when the vector is empty, not a
    /// multiple of 24 long, or contains negative/non-finite energies.
    pub fn new(start_day_of_year: u32, hourly: Vec<Energy>) -> Result<HarvestTrace, HarvestError> {
        if hourly.is_empty() || !hourly.len().is_multiple_of(24) {
            return Err(HarvestError::InvalidParameter(format!(
                "{} hourly values is not a positive multiple of 24",
                hourly.len()
            )));
        }
        if hourly.iter().any(|e| !e.is_finite() || e.is_negative()) {
            return Err(HarvestError::InvalidParameter(
                "harvest energies must be finite and non-negative".into(),
            ));
        }
        Ok(HarvestTrace {
            start_day_of_year,
            hourly,
        })
    }

    /// Generates a trace from the solar/weather/panel models.
    ///
    /// Convenience wrapper over
    /// [`SolarSource`] + [`HarvestSource::generate`]; other source models
    /// are generated through the trait directly.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when `days == 0`.
    pub fn generate(
        solar: &SolarModel,
        weather: &WeatherModel,
        panel: &SolarPanel,
        start_day_of_year: u32,
        days: u32,
    ) -> Result<HarvestTrace, HarvestError> {
        SolarSource::new(solar.clone(), weather.clone(), panel.clone())
            .generate(start_day_of_year, days)
    }

    /// A September-like month (30 days from day-of-year 244) at Golden,
    /// Colorado with the calibrated wearable panel — the setting of the
    /// paper's Fig. 7 case study.
    #[must_use]
    pub fn september_like(seed: u64) -> HarvestTrace {
        HarvestTrace::generate(
            &SolarModel::golden_colorado(),
            &WeatherModel::new(seed),
            &SolarPanel::sp3_37_wearable(),
            244,
            30,
        )
        .expect("fixed parameters are valid")
    }

    /// Day-of-year of hour 0.
    #[must_use]
    pub fn start_day_of_year(&self) -> u32 {
        self.start_day_of_year
    }

    /// Number of whole days.
    #[must_use]
    pub fn days(&self) -> u32 {
        (self.hourly.len() / 24) as u32
    }

    /// Number of hours.
    #[must_use]
    pub fn len_hours(&self) -> usize {
        self.hourly.len()
    }

    /// Energy harvested in hour `hour` (0-23) of day `day` (0-based).
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    #[must_use]
    pub fn energy(&self, day: u32, hour: u32) -> Energy {
        assert!(hour < 24, "hour {hour} out of range");
        self.hourly[(day * 24 + hour) as usize]
    }

    /// Iterator over all hourly energies in time order.
    pub fn iter(&self) -> impl Iterator<Item = Energy> + '_ {
        self.hourly.iter().copied()
    }

    /// Total energy of the whole trace.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.hourly.iter().sum()
    }

    /// Total energy of one day.
    ///
    /// # Panics
    ///
    /// Panics when `day` is out of range.
    #[must_use]
    pub fn daily_total(&self, day: u32) -> Energy {
        let start = (day * 24) as usize;
        self.hourly[start..start + 24].iter().sum()
    }

    /// Largest single-hour harvest.
    #[must_use]
    pub fn peak(&self) -> Energy {
        self.hourly.iter().copied().fold(Energy::ZERO, Energy::max)
    }

    /// Mean harvest per hour-of-day slot across all days: the diurnal
    /// profile an EWMA allocator converges toward.
    #[must_use]
    pub fn diurnal_profile(&self) -> [Energy; 24] {
        let mut sums = [0.0f64; 24];
        for (i, e) in self.hourly.iter().enumerate() {
            sums[i % 24] += e.joules();
        }
        let days = f64::from(self.days());
        sums.map(|s| Energy::from_joules(s / days))
    }

    /// Number of "useful" hours: those harvesting more than the paper's
    /// off-state floor (0.18 J), i.e. hours in which the device can do
    /// more than idle.
    #[must_use]
    pub fn useful_hours(&self) -> usize {
        self.hourly.iter().filter(|e| e.joules() > 0.18).count()
    }

    /// Serializes as `day,hour,joules` CSV lines (with header).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("day,hour,joules\n");
        for (i, e) in self.hourly.iter().enumerate() {
            let day = i / 24;
            let hour = i % 24;
            out.push_str(&format!("{day},{hour},{:.6}\n", e.joules()));
        }
        out
    }

    /// Parses the CSV produced by [`HarvestTrace::to_csv`].
    ///
    /// # Errors
    ///
    /// [`HarvestError::Parse`] on malformed rows,
    /// [`HarvestError::InvalidParameter`] on bad totals.
    pub fn from_csv(start_day_of_year: u32, csv: &str) -> Result<HarvestTrace, HarvestError> {
        let mut hourly = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            if lineno == 0 && line.starts_with("day,") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 3 {
                return Err(HarvestError::Parse(format!(
                    "line {}: expected 3 fields, got {}",
                    lineno + 1,
                    fields.len()
                )));
            }
            let joules: f64 = fields[2]
                .trim()
                .parse()
                .map_err(|e| HarvestError::Parse(format!("line {}: {e}", lineno + 1)))?;
            hourly.push(Energy::from_joules(joules));
        }
        HarvestTrace::new(start_day_of_year, hourly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(HarvestTrace::new(1, vec![]).is_err());
        assert!(HarvestTrace::new(1, vec![Energy::ZERO; 23]).is_err());
        assert!(HarvestTrace::new(1, vec![Energy::from_joules(-1.0); 24]).is_err());
        assert!(HarvestTrace::new(1, vec![Energy::ZERO; 48]).is_ok());
    }

    #[test]
    fn september_trace_shape() {
        let t = HarvestTrace::september_like(42);
        assert_eq!(t.days(), 30);
        assert_eq!(t.len_hours(), 720);
        assert_eq!(t.start_day_of_year(), 244);
        // Nights are dark.
        for day in 0..30 {
            assert_eq!(t.energy(day, 0), Energy::ZERO, "day {day} midnight");
            assert_eq!(t.energy(day, 23), Energy::ZERO);
        }
        // Peak hour lands in the paper's budget regime.
        let peak = t.peak().joules();
        assert!((5.0..12.0).contains(&peak), "peak = {peak} J");
        // Some cloudy-day dispersion exists.
        let day_totals: Vec<f64> = (0..30).map(|d| t.daily_total(d).joules()).collect();
        let max = day_totals.iter().cloned().fold(f64::MIN, f64::max);
        let min = day_totals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 1.5 * min, "no dispersion: {day_totals:?}");
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        assert_eq!(
            HarvestTrace::september_like(7),
            HarvestTrace::september_like(7)
        );
        assert_ne!(
            HarvestTrace::september_like(7),
            HarvestTrace::september_like(8)
        );
    }

    #[test]
    fn totals_are_consistent() {
        let t = HarvestTrace::september_like(3);
        let daily_sum: f64 = (0..30).map(|d| t.daily_total(d).joules()).sum();
        assert!((daily_sum - t.total().joules()).abs() < 1e-9);
        let iter_sum: f64 = t.iter().map(|e| e.joules()).sum();
        assert!((iter_sum - t.total().joules()).abs() < 1e-9);
    }

    #[test]
    fn diurnal_profile_peaks_at_midday_and_is_dark_at_night() {
        let t = HarvestTrace::september_like(5);
        let profile = t.diurnal_profile();
        assert_eq!(profile[0], Energy::ZERO);
        assert_eq!(profile[23], Energy::ZERO);
        let noonish: f64 = profile[11].joules().max(profile[12].joules());
        let morning = profile[8].joules();
        assert!(noonish > morning, "noon {noonish} <= morning {morning}");
        // The profile means reconstruct the total.
        let total_from_profile: f64 =
            profile.iter().map(|e| e.joules()).sum::<f64>() * t.days() as f64;
        assert!((total_from_profile - t.total().joules()).abs() < 1e-6);
    }

    #[test]
    fn useful_hours_are_the_daylight_hours() {
        let t = HarvestTrace::september_like(6);
        let useful = t.useful_hours();
        // September at Golden: ~12.5 daylight hours, most above the floor.
        let per_day = useful as f64 / t.days() as f64;
        assert!(
            (8.0..14.0).contains(&per_day),
            "useful hours per day = {per_day}"
        );
    }

    #[test]
    fn csv_roundtrip() {
        let t = HarvestTrace::september_like(9);
        let csv = t.to_csv();
        let back = HarvestTrace::from_csv(244, &csv).unwrap();
        assert_eq!(back.len_hours(), t.len_hours());
        for (a, b) in t.iter().zip(back.iter()) {
            assert!((a.joules() - b.joules()).abs() < 1e-5);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(HarvestTrace::from_csv(1, "day,hour,joules\n1,2\n").is_err());
        assert!(HarvestTrace::from_csv(1, "day,hour,joules\n1,2,abc\n").is_err());
    }

    #[test]
    fn generate_rejects_zero_days() {
        let err = HarvestTrace::generate(
            &SolarModel::golden_colorado(),
            &WeatherModel::new(1),
            &SolarPanel::sp3_37_wearable(),
            1,
            0,
        );
        assert!(err.is_err());
    }
}
