//! Indoor photovoltaic harvesting under artificial office lighting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reap_units::Energy;

use crate::{HarvestError, HarvestSource, SolarPanel};

/// An indoor photovoltaic cell driven by an office-lighting duty cycle.
///
/// Indoor light is a radically different regime from sunlight: a brightly
/// lit office delivers on the order of 500 lux — a few W/m² of radiant
/// flux — versus ~1000 W/m² outdoors, but it is *stable* (no clouds) and
/// follows occupancy rather than the sun. The model composes:
///
/// * a **lighting schedule** — weekday lights-on from 07:00 to 21:59 with
///   full brightness during core office hours and dimmer early/evening
///   shoulders; weekends mostly dark with occasional partial occupancy;
/// * per-hour seeded **occupancy jitter** (meetings out of the room, desk
///   lamps, blinds) multiplying the nominal illuminance;
/// * an amorphous-silicon **cell** tuned for indoor spectra, reusing the
///   [`SolarPanel`] conversion chain with indoor-calibrated constants.
///
/// Lights are hard-off outside 07:00–21:59 and all harvests are zero
/// then — the source is photovoltaic, so the substrate's "dark at night"
/// property holds exactly.
///
/// # Examples
///
/// ```
/// use reap_harvest::{HarvestSource, IndoorPhotovoltaic};
///
/// let pv = IndoorPhotovoltaic::office_badge(3);
/// // A weekday mid-morning in the office harvests a usable budget…
/// assert!(pv.hourly_energy(244, 0, 10).joules() > 0.18);
/// // …and 3 am harvests exactly nothing.
/// assert_eq!(pv.hourly_energy(244, 0, 3).joules(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IndoorPhotovoltaic {
    seed: u64,
    cell: SolarPanel,
    /// Radiant flux at full office brightness, W/m² (a well-lit office:
    /// roughly 500 lux of white LED/fluorescent light).
    full_brightness_wm2: f64,
}

/// First hour of the lighting schedule (inclusive).
const LIGHTS_ON_HOUR: u32 = 7;
/// Last hour of the lighting schedule (inclusive).
const LIGHTS_OFF_HOUR: u32 = 21;

impl IndoorPhotovoltaic {
    /// The calibrated badge-sized indoor cell: 60 cm² of amorphous
    /// silicon (the chemistry of choice under indoor spectra) behind a
    /// boost converter, worn facing outward on the chest.
    ///
    /// Calibration targets the low end of the paper's 0.18–10 J regime:
    /// full-brightness office hours harvest ≈1–2 J, enough to keep a
    /// low-power design point alive but far from a solar noon — exactly
    /// the stress regime indoor deployments live in.
    #[must_use]
    pub fn office_badge(seed: u64) -> IndoorPhotovoltaic {
        IndoorPhotovoltaic::new(
            seed,
            // area 60 cm², a-Si indoor efficiency 9%, outward-facing badge
            // derating 0.75, converter 0.75.
            SolarPanel::new(0.006, 0.09, 0.75, 0.75).expect("calibrated constants are valid"),
            2.0,
        )
        .expect("calibrated constants are valid")
    }

    /// Creates an indoor source from a cell model and the radiant flux at
    /// full office brightness.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when the flux is non-positive or
    /// non-finite.
    pub fn new(
        seed: u64,
        cell: SolarPanel,
        full_brightness_wm2: f64,
    ) -> Result<IndoorPhotovoltaic, HarvestError> {
        if !full_brightness_wm2.is_finite() || full_brightness_wm2 <= 0.0 {
            return Err(HarvestError::InvalidParameter(format!(
                "full-brightness flux {full_brightness_wm2} must be positive"
            )));
        }
        Ok(IndoorPhotovoltaic {
            seed,
            cell,
            full_brightness_wm2,
        })
    }

    /// Nominal brightness factor of the schedule (0 = dark, 1 = full), not
    /// yet jittered. Weekday/weekend phase comes from the trace-relative
    /// day index, phase-locked to the activity routines' week (day 0 is a
    /// Monday).
    fn schedule_brightness(day_index: u32, hour: u32) -> f64 {
        if !(LIGHTS_ON_HOUR..=LIGHTS_OFF_HOUR).contains(&hour) {
            return 0.0;
        }
        if reap_data::DailyRoutine::is_weekday(day_index) {
            match hour {
                // Shoulders: arriving early / the cleaning crew late.
                7 | 20..=21 => 0.45,
                // Core office hours.
                9..=17 => 1.0,
                _ => 0.8,
            }
        } else {
            // Weekend: mostly dark, partial occupancy around midday.
            match hour {
                10..=16 => 0.25,
                _ => 0.08,
            }
        }
    }
}

impl HarvestSource for IndoorPhotovoltaic {
    fn name(&self) -> &'static str {
        "indoor-pv"
    }

    fn hourly_energy(&self, _day_of_year: u32, day_index: u32, hour: u32) -> Energy {
        let nominal = Self::schedule_brightness(day_index, hour);
        if nominal == 0.0 {
            return Energy::ZERO;
        }
        // Occupancy jitter per (seed, day, hour): meetings, blinds, desk
        // lamps. Derived, not iterated, so any cell reproduces alone.
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x8CB9_2BA7_2F3D_8DD7)
                .wrapping_add(u64::from(day_index) << 8)
                .wrapping_add(u64::from(hour)),
        );
        let occupancy = rng.gen_range(0.55..1.0);
        self.cell
            .hourly_energy(self.full_brightness_wm2 * nominal * occupancy)
    }

    fn is_photovoltaic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let cell = SolarPanel::new(0.006, 0.09, 0.75, 0.75).unwrap();
        assert!(IndoorPhotovoltaic::new(0, cell.clone(), 0.0).is_err());
        assert!(IndoorPhotovoltaic::new(0, cell.clone(), f64::NAN).is_err());
        assert!(IndoorPhotovoltaic::new(0, cell, 4.0).is_ok());
    }

    #[test]
    fn dark_outside_the_lighting_schedule() {
        let pv = IndoorPhotovoltaic::office_badge(1);
        for day in 0..14 {
            for hour in [0, 3, 5, 6, 22, 23] {
                assert_eq!(
                    pv.hourly_energy(100, day, hour),
                    Energy::ZERO,
                    "day {day} hour {hour}"
                );
            }
        }
    }

    #[test]
    fn office_hours_land_in_the_useful_regime() {
        let pv = IndoorPhotovoltaic::office_badge(2);
        for day in 0..5 {
            for hour in 9..=17 {
                let e = pv.hourly_energy(100, day, hour).joules();
                assert!((0.18..3.0).contains(&e), "day {day} hour {hour}: {e} J");
            }
        }
    }

    #[test]
    fn weekends_are_dimmer_than_weekdays() {
        let pv = IndoorPhotovoltaic::office_badge(3);
        let weekday: f64 = (9..=17).map(|h| pv.hourly_energy(100, 0, h).joules()).sum();
        let weekend: f64 = (9..=17).map(|h| pv.hourly_energy(100, 5, h).joules()).sum();
        assert!(
            weekend < 0.5 * weekday,
            "weekend {weekend} vs weekday {weekday}"
        );
    }

    #[test]
    fn deterministic_per_seed_and_independent_of_calendar_day() {
        let a = IndoorPhotovoltaic::office_badge(4);
        let b = IndoorPhotovoltaic::office_badge(4);
        let c = IndoorPhotovoltaic::office_badge(5);
        let mut differs = false;
        for hour in 0..24 {
            assert_eq!(a.hourly_energy(100, 2, hour), b.hourly_energy(100, 2, hour));
            // Indoor lighting ignores the season.
            assert_eq!(a.hourly_energy(1, 2, hour), a.hourly_energy(300, 2, hour));
            differs |= a.hourly_energy(100, 2, hour) != c.hourly_energy(100, 2, hour);
        }
        assert!(differs, "seeds 4 and 5 behaved identically");
    }
}
