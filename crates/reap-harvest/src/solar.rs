//! Outdoor solar harvesting: clear-sky geometry, stochastic weather, and
//! the [`SolarSource`] that composes them into a [`HarvestSource`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reap_units::Energy;

use crate::{HarvestError, HarvestSource, SolarPanel};

/// Latitude of NREL's Solar Radiation Research Laboratory in Golden,
/// Colorado — the measurement site of the paper's harvesting data.
pub const GOLDEN_COLORADO_LATITUDE: f64 = 39.74;

/// Clear-sky irradiance model at a fixed latitude.
///
/// Uses standard solar geometry: declination by Cooper's formula, the hour
/// angle, and a Meinel-style air-mass attenuation of the solar constant.
/// Accurate to the ~10% level, which is ample for generating realistic
/// *budget distributions* (the quantity the REAP evaluation consumes).
#[derive(Debug, Clone, PartialEq)]
pub struct SolarModel {
    latitude_rad: f64,
}

impl SolarModel {
    /// A model at the latitude of the paper's measurement site.
    #[must_use]
    pub fn golden_colorado() -> SolarModel {
        SolarModel::new(GOLDEN_COLORADO_LATITUDE).expect("constant latitude is valid")
    }

    /// A model at an arbitrary latitude in degrees.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] for latitudes outside ±90°.
    pub fn new(latitude_deg: f64) -> Result<SolarModel, HarvestError> {
        if !latitude_deg.is_finite() || latitude_deg.abs() > 90.0 {
            return Err(HarvestError::InvalidParameter(format!(
                "latitude {latitude_deg} outside [-90, 90]"
            )));
        }
        Ok(SolarModel {
            latitude_rad: latitude_deg.to_radians(),
        })
    }

    /// Sine of the solar elevation at `(day_of_year, hour)`; negative at
    /// night. `day_of_year` is 1-based (1 = Jan 1), `hour` is local solar
    /// time in `[0, 24)`.
    #[must_use]
    pub fn sin_elevation(&self, day_of_year: u32, hour: f64) -> f64 {
        // Cooper's declination formula.
        let declination = (23.45f64).to_radians()
            * (2.0 * std::f64::consts::PI * f64::from(284 + day_of_year) / 365.0).sin();
        let hour_angle = (15.0 * (hour - 12.0)).to_radians();
        self.latitude_rad.sin() * declination.sin()
            + self.latitude_rad.cos() * declination.cos() * hour_angle.cos()
    }

    /// Clear-sky global horizontal irradiance in W/m².
    ///
    /// Zero when the sun is below the horizon.
    #[must_use]
    pub fn clear_sky_irradiance(&self, day_of_year: u32, hour: f64) -> f64 {
        let sin_el = self.sin_elevation(day_of_year, hour);
        if sin_el <= 0.0 {
            return 0.0;
        }
        // Meinel's empirical clear-sky model: direct-normal irradiance
        // attenuated by air mass, projected onto the horizontal, plus a
        // small diffuse fraction.
        const SOLAR_CONSTANT: f64 = 1353.0;
        let air_mass = 1.0 / sin_el;
        let dni = SOLAR_CONSTANT * 0.7f64.powf(air_mass.powf(0.678));
        let diffuse = 0.1 * dni;
        (dni * sin_el + diffuse).max(0.0)
    }
}

/// Daily sky condition of the weather Markov chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkyCondition {
    /// Nearly unattenuated sun.
    Clear,
    /// Broken clouds: substantial, variable attenuation.
    PartlyCloudy,
    /// Thick overcast: heavy attenuation.
    Overcast,
}

impl SkyCondition {
    /// Mean transmittance of this condition (fraction of clear-sky
    /// irradiance that reaches the panel).
    #[must_use]
    pub fn mean_transmittance(self) -> f64 {
        match self {
            SkyCondition::Clear => 0.95,
            SkyCondition::PartlyCloudy => 0.55,
            SkyCondition::Overcast => 0.20,
        }
    }
}

/// A seeded stochastic weather generator: a per-day Markov chain over
/// [`SkyCondition`] plus hour-scale attenuation noise.
///
/// September in Colorado is mostly sunny; the default transition matrix
/// reflects that (long clear runs, occasional cloudy spells), producing
/// the wide min/mean/max dispersion visible in the paper's Fig. 7 error
/// bars.
#[derive(Debug, Clone, PartialEq)]
pub struct WeatherModel {
    seed: u64,
}

impl WeatherModel {
    /// Creates a weather stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> WeatherModel {
        WeatherModel { seed }
    }

    /// Sky condition of `day_index` (0-based since the stream's start).
    ///
    /// Computed by replaying the Markov chain from day 0, so any day can
    /// be queried independently and reproducibly.
    #[must_use]
    pub fn day_condition(&self, day_index: u32) -> SkyCondition {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut condition = SkyCondition::Clear;
        for _ in 0..=day_index {
            let roll: f64 = rng.gen();
            condition = match condition {
                SkyCondition::Clear => {
                    if roll < 0.70 {
                        SkyCondition::Clear
                    } else if roll < 0.90 {
                        SkyCondition::PartlyCloudy
                    } else {
                        SkyCondition::Overcast
                    }
                }
                SkyCondition::PartlyCloudy => {
                    if roll < 0.40 {
                        SkyCondition::Clear
                    } else if roll < 0.80 {
                        SkyCondition::PartlyCloudy
                    } else {
                        SkyCondition::Overcast
                    }
                }
                SkyCondition::Overcast => {
                    if roll < 0.25 {
                        SkyCondition::Clear
                    } else if roll < 0.60 {
                        SkyCondition::PartlyCloudy
                    } else {
                        SkyCondition::Overcast
                    }
                }
            };
        }
        condition
    }

    /// Transmittance factor in `(0, 1]` for a specific hour, combining the
    /// day's condition with hour-scale cloud noise.
    #[must_use]
    pub fn transmittance(&self, day_index: u32, hour: u32) -> f64 {
        let condition = self.day_condition(day_index);
        // Independent per-hour jitter derived from (seed, day, hour).
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xD134_2543_DE82_EF95)
                .wrapping_add(u64::from(day_index) << 8)
                .wrapping_add(u64::from(hour)),
        );
        let jitter: f64 = match condition {
            SkyCondition::Clear => rng.gen_range(-0.05..0.05),
            SkyCondition::PartlyCloudy => rng.gen_range(-0.30..0.30),
            SkyCondition::Overcast => rng.gen_range(-0.10..0.10),
        };
        (condition.mean_transmittance() + jitter).clamp(0.02, 1.0)
    }
}

/// The outdoor-solar [`HarvestSource`]: clear-sky irradiance attenuated by
/// a seeded weather stream and converted by a wearable panel.
///
/// This is the source the paper's Fig. 7 case study uses;
/// [`HarvestTrace::september_like`](crate::HarvestTrace::september_like)
/// is a shorthand for generating a September month from it.
///
/// # Examples
///
/// ```
/// use reap_harvest::{HarvestSource, SolarSource};
///
/// let source = SolarSource::september_wearable(7);
/// // Clear noons harvest joules; solar midnight harvests nothing.
/// assert!(source.hourly_energy(244, 0, 12).joules() > 0.5);
/// assert_eq!(source.hourly_energy(244, 0, 0).joules(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolarSource {
    model: SolarModel,
    weather: WeatherModel,
    panel: SolarPanel,
}

impl SolarSource {
    /// Composes a solar geometry model, weather stream, and panel.
    #[must_use]
    pub fn new(model: SolarModel, weather: WeatherModel, panel: SolarPanel) -> SolarSource {
        SolarSource {
            model,
            weather,
            panel,
        }
    }

    /// The paper's evaluation setting: Golden, Colorado geometry, a
    /// seeded weather stream, and the calibrated SP3-37-class wearable
    /// panel.
    #[must_use]
    pub fn september_wearable(seed: u64) -> SolarSource {
        SolarSource::new(
            SolarModel::golden_colorado(),
            WeatherModel::new(seed),
            SolarPanel::sp3_37_wearable(),
        )
    }
}

impl HarvestSource for SolarSource {
    fn name(&self) -> &'static str {
        "outdoor-solar"
    }

    fn hourly_energy(&self, day_of_year: u32, day_index: u32, hour: u32) -> Energy {
        // Mid-hour irradiance approximates the hourly integral.
        let clear = self
            .model
            .clear_sky_irradiance(day_of_year, f64::from(hour) + 0.5);
        let seen = clear * self.weather.transmittance(day_index, hour);
        self.panel.hourly_energy(seen)
    }

    fn is_photovoltaic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solar_source_matches_manual_composition() {
        let source = SolarSource::september_wearable(11);
        let model = SolarModel::golden_colorado();
        let weather = WeatherModel::new(11);
        let panel = SolarPanel::sp3_37_wearable();
        for hour in 0..24 {
            let direct = panel.hourly_energy(
                model.clear_sky_irradiance(244, f64::from(hour) + 0.5)
                    * weather.transmittance(0, hour),
            );
            assert_eq!(source.hourly_energy(244, 0, hour), direct);
        }
        assert_eq!(source.name(), "outdoor-solar");
        assert!(source.is_photovoltaic());
    }

    #[test]
    fn latitude_validation() {
        assert!(SolarModel::new(91.0).is_err());
        assert!(SolarModel::new(f64::NAN).is_err());
        assert!(SolarModel::new(-45.0).is_ok());
    }

    #[test]
    fn night_is_dark() {
        let m = SolarModel::golden_colorado();
        for day in [1, 100, 244, 365] {
            assert_eq!(m.clear_sky_irradiance(day, 0.0), 0.0, "midnight day {day}");
            assert_eq!(m.clear_sky_irradiance(day, 23.0), 0.0);
        }
    }

    #[test]
    fn noon_peaks_and_is_plausible() {
        let m = SolarModel::golden_colorado();
        // September 1 (day 244): noon GHI at Golden ~ 700-900 W/m².
        let noon = m.clear_sky_irradiance(244, 12.0);
        assert!((600.0..1000.0).contains(&noon), "noon GHI = {noon}");
        // Noon beats mid-morning and evening.
        assert!(noon > m.clear_sky_irradiance(244, 9.0));
        assert!(noon > m.clear_sky_irradiance(244, 17.0));
    }

    #[test]
    fn summer_beats_winter() {
        let m = SolarModel::golden_colorado();
        let june = m.clear_sky_irradiance(172, 12.0);
        let december = m.clear_sky_irradiance(355, 12.0);
        assert!(june > december * 1.3, "june {june} vs december {december}");
    }

    #[test]
    fn daylight_hours_are_reasonable_in_september() {
        let m = SolarModel::golden_colorado();
        let daylight = (0..24)
            .filter(|&h| m.clear_sky_irradiance(244, h as f64 + 0.5) > 0.0)
            .count();
        assert!((11..=14).contains(&daylight), "{daylight} daylight hours");
    }

    #[test]
    fn weather_is_deterministic_and_varies() {
        let w = WeatherModel::new(42);
        let w2 = WeatherModel::new(42);
        for day in 0..30 {
            assert_eq!(w.day_condition(day), w2.day_condition(day));
            for hour in 0..24 {
                assert_eq!(w.transmittance(day, hour), w2.transmittance(day, hour));
            }
        }
        // Across a month, more than one condition shows up.
        let conditions: std::collections::HashSet<_> =
            (0..30).map(|d| w.day_condition(d)).collect();
        assert!(conditions.len() >= 2, "degenerate weather: {conditions:?}");
    }

    #[test]
    fn transmittance_is_in_range_and_orders_by_condition() {
        let w = WeatherModel::new(1);
        let mut sums = std::collections::HashMap::new();
        let mut counts = std::collections::HashMap::new();
        for day in 0..120 {
            let c = w.day_condition(day);
            for hour in 0..24 {
                let t = w.transmittance(day, hour);
                assert!((0.0..=1.0).contains(&t));
                *sums.entry(c).or_insert(0.0) += t;
                *counts.entry(c).or_insert(0usize) += 1;
            }
        }
        let mean = |c: SkyCondition| {
            sums.get(&c).copied().unwrap_or(0.0) / counts.get(&c).copied().unwrap_or(1) as f64
        };
        if counts.contains_key(&SkyCondition::Clear) && counts.contains_key(&SkyCondition::Overcast)
        {
            assert!(mean(SkyCondition::Clear) > mean(SkyCondition::Overcast));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WeatherModel::new(1);
        let b = WeatherModel::new(2);
        let differs = (0..30).any(|d| a.day_condition(d) != b.day_condition(d));
        assert!(differs);
    }
}
