//! A small backup battery / supercapacitor model.

use reap_units::Energy;

use crate::HarvestError;

/// A small energy buffer with charge/discharge efficiencies.
///
/// The paper's second device class "uses a small battery as a backup to
/// extend the active time"; the allocator policies lean on this buffer to
/// smooth day/night harvesting.
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    capacity: Energy,
    level: Energy,
    charge_efficiency: f64,
    discharge_efficiency: f64,
}

impl Battery {
    /// A 60 J buffer starting half full — enough to carry roughly a night
    /// of low-power operation.
    #[must_use]
    pub fn small_wearable() -> Battery {
        Battery::new(
            Energy::from_joules(60.0),
            Energy::from_joules(30.0),
            0.95,
            0.95,
        )
        .expect("constants are valid")
    }

    /// Creates a battery.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when the capacity is
    /// non-positive, the initial level is outside `[0, capacity]`, or an
    /// efficiency is outside `(0, 1]`.
    pub fn new(
        capacity: Energy,
        initial_level: Energy,
        charge_efficiency: f64,
        discharge_efficiency: f64,
    ) -> Result<Battery, HarvestError> {
        if !capacity.is_finite() || capacity.joules() <= 0.0 {
            return Err(HarvestError::InvalidParameter(format!(
                "capacity {capacity} must be positive"
            )));
        }
        if !initial_level.is_finite() || initial_level.is_negative() || initial_level > capacity {
            return Err(HarvestError::InvalidParameter(format!(
                "initial level {initial_level} outside [0, {capacity}]"
            )));
        }
        for (name, v) in [
            ("charge efficiency", charge_efficiency),
            ("discharge efficiency", discharge_efficiency),
        ] {
            if !v.is_finite() || v <= 0.0 || v > 1.0 {
                return Err(HarvestError::InvalidParameter(format!(
                    "{name} {v} outside (0, 1]"
                )));
            }
        }
        Ok(Battery {
            capacity,
            level: initial_level,
            charge_efficiency,
            discharge_efficiency,
        })
    }

    /// Current stored energy.
    #[must_use]
    pub fn level(&self) -> Energy {
        self.level
    }

    /// Maximum stored energy.
    #[must_use]
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// State of charge in `[0, 1]`.
    #[must_use]
    pub fn state_of_charge(&self) -> f64 {
        self.level / self.capacity
    }

    /// Fraction of incoming energy actually stored, in `(0, 1]`.
    #[must_use]
    pub fn charge_efficiency(&self) -> f64 {
        self.charge_efficiency
    }

    /// Fraction of drawn energy actually delivered, in `(0, 1]`.
    #[must_use]
    pub fn discharge_efficiency(&self) -> f64 {
        self.discharge_efficiency
    }

    /// Charges with `energy` (pre-efficiency). Returns the energy that
    /// *spilled* (could not be stored because the battery was full).
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative.
    pub fn charge(&mut self, energy: Energy) -> Energy {
        assert!(!energy.is_negative(), "cannot charge negative energy");
        let storable = energy * self.charge_efficiency;
        let headroom = self.capacity - self.level;
        let stored = storable.min(headroom);
        self.level += stored;
        // Spill reported at the input side (before efficiency) for the
        // part that did not fit.
        (storable - stored) / self.charge_efficiency
    }

    /// Draws up to `energy` from the battery. Returns the energy actually
    /// *delivered* to the load (post-efficiency), which is less than
    /// requested when the battery runs dry.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative.
    pub fn discharge(&mut self, energy: Energy) -> Energy {
        assert!(!energy.is_negative(), "cannot discharge negative energy");
        let needed_internally = energy / self.discharge_efficiency;
        let drawn = needed_internally.min(self.level);
        self.level -= drawn;
        drawn * self.discharge_efficiency
    }

    /// How much energy a load could draw right now (post-efficiency).
    #[must_use]
    pub fn deliverable(&self) -> Energy {
        self.level * self.discharge_efficiency
    }

    /// Overwrites the stored level — state reinjection for
    /// checkpoint/restore of a resident battery. The exact value is kept
    /// (no rounding), so a restored battery behaves bit-identically.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when `level` is not finite or
    /// outside `[0, capacity]`.
    pub fn set_level(&mut self, level: Energy) -> Result<(), HarvestError> {
        if !level.is_finite() || level.is_negative() || level > self.capacity {
            return Err(HarvestError::InvalidParameter(format!(
                "level {level} outside [0, {}]",
                self.capacity
            )));
        }
        self.level = level;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joules(j: f64) -> Energy {
        Energy::from_joules(j)
    }

    #[test]
    fn validation() {
        assert!(Battery::new(joules(0.0), joules(0.0), 0.9, 0.9).is_err());
        assert!(Battery::new(joules(10.0), joules(11.0), 0.9, 0.9).is_err());
        assert!(Battery::new(joules(10.0), joules(5.0), 0.0, 0.9).is_err());
        assert!(Battery::new(joules(10.0), joules(5.0), 0.9, 1.1).is_err());
    }

    #[test]
    fn charge_respects_capacity_and_reports_spill() {
        let mut b = Battery::new(joules(10.0), joules(9.0), 1.0, 1.0).unwrap();
        let spill = b.charge(joules(3.0));
        assert!((b.level().joules() - 10.0).abs() < 1e-12);
        assert!((spill.joules() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn charge_efficiency_loses_energy() {
        let mut b = Battery::new(joules(100.0), joules(0.0), 0.8, 1.0).unwrap();
        let spill = b.charge(joules(10.0));
        assert_eq!(spill, Energy::ZERO);
        assert!((b.level().joules() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn discharge_delivers_up_to_level() {
        let mut b = Battery::new(joules(10.0), joules(4.0), 1.0, 1.0).unwrap();
        let got = b.discharge(joules(6.0));
        assert!((got.joules() - 4.0).abs() < 1e-12);
        assert_eq!(b.level(), Energy::ZERO);
    }

    #[test]
    fn discharge_efficiency_costs_extra() {
        let mut b = Battery::new(joules(10.0), joules(10.0), 1.0, 0.5).unwrap();
        let got = b.discharge(joules(2.0));
        assert!((got.joules() - 2.0).abs() < 1e-12);
        // Delivering 2 J at 50% efficiency drained 4 J.
        assert!((b.level().joules() - 6.0).abs() < 1e-12);
        assert!((b.deliverable().joules() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn state_of_charge() {
        let b = Battery::new(joules(60.0), joules(30.0), 0.95, 0.95).unwrap();
        assert!((b.state_of_charge() - 0.5).abs() < 1e-12);
        assert_eq!(Battery::small_wearable(), b);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_charge_panics() {
        let mut b = Battery::small_wearable();
        let _ = b.charge(joules(-1.0));
    }

    #[test]
    fn set_level_reinjects_exact_state() {
        let mut b = Battery::small_wearable();
        let exact = joules(17.123456789012345);
        b.set_level(exact).unwrap();
        assert_eq!(b.level(), exact);
        assert!(b.set_level(joules(-0.1)).is_err());
        assert!(b.set_level(joules(60.1)).is_err());
        assert!(b.set_level(joules(f64::NAN)).is_err());
        // A rejected set leaves the level untouched.
        assert_eq!(b.level(), exact);
    }
}
