//! Kinetic (piezoelectric/electromagnetic) motion harvesting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reap_data::DailyRoutine;
use reap_units::{Energy, Power, TimeSpan};

use crate::{HarvestError, HarvestSource};

/// A kinetic energy harvester (piezo stack or moving-magnet generator)
/// excited by the wearer's own motion.
///
/// A resonant harvester's electrical output grows with the *square* of
/// the driving acceleration, so an hour's harvest scales with the
/// mix-weighted mean-square motion intensity of the wearer's
/// [`DailyRoutine`] — the same per-activity intensities the `reap-data`
/// waveform models synthesize
/// ([`Activity::motion_intensity`](reap_data::Activity::motion_intensity)).
/// The result is the *spikiest* of the bundled sources: sleeping hours
/// harvest microjoules, desk hours a few tenths of a joule, walking
/// commutes over a joule, and an exercise block several joules — spanning
/// the paper's 0.18–10 J regime within a single day.
///
/// # Examples
///
/// ```
/// use reap_harvest::{HarvestSource, KineticHarvester};
///
/// let piezo = KineticHarvester::shoe_piezo(9);
/// // A weekday morning commute dwarfs the dead of night.
/// let commute = piezo.hourly_energy(244, 0, 8).joules();
/// let night = piezo.hourly_energy(244, 0, 3).joules();
/// assert!(commute > 5.0 * night);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KineticHarvester {
    seed: u64,
    routine: DailyRoutine,
    /// Electrical output per g² of mean-square driving acceleration, in
    /// W/g².
    conversion_w_per_g2: f64,
}

impl KineticHarvester {
    /// The calibrated shoe-mounted piezo stack: ~3 mW/g², putting steady
    /// walking at ≈1 J/h and jumping exercise in the multi-joule range.
    #[must_use]
    pub fn shoe_piezo(seed: u64) -> KineticHarvester {
        KineticHarvester::new(seed, 3e-3).expect("calibrated constants are valid")
    }

    /// Creates a kinetic harvester model.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when the conversion factor is
    /// non-positive or non-finite.
    pub fn new(seed: u64, conversion_w_per_g2: f64) -> Result<KineticHarvester, HarvestError> {
        if !conversion_w_per_g2.is_finite() || conversion_w_per_g2 <= 0.0 {
            return Err(HarvestError::InvalidParameter(format!(
                "conversion factor {conversion_w_per_g2} must be positive"
            )));
        }
        Ok(KineticHarvester {
            seed,
            routine: DailyRoutine::new(seed),
            conversion_w_per_g2,
        })
    }
}

impl HarvestSource for KineticHarvester {
    fn name(&self) -> &'static str {
        "kinetic"
    }

    fn hourly_energy(&self, _day_of_year: u32, day_index: u32, hour: u32) -> Energy {
        let mix = self.routine.hourly_mix(day_index, hour);
        // Mounting/coupling jitter per (seed, day, hour): how tightly the
        // shoe is laced, surface hardness, gait variation.
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .wrapping_add(u64::from(day_index) << 8)
                .wrapping_add(u64::from(hour)),
        );
        let jitter = rng.gen_range(0.80..1.20);
        let watts = self.conversion_w_per_g2 * mix.mean_square_motion_intensity() * jitter;
        Power::from_watts(watts) * TimeSpan::from_hours(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(KineticHarvester::new(0, 0.0).is_err());
        assert!(KineticHarvester::new(0, -1.0).is_err());
        assert!(KineticHarvester::new(0, f64::INFINITY).is_err());
        assert!(KineticHarvester::new(0, 3e-3).is_ok());
    }

    #[test]
    fn nonnegative_and_bounded() {
        let k = KineticHarvester::shoe_piezo(1);
        for day in 0..14 {
            for hour in 0..24 {
                let e = k.hourly_energy(244, day, hour).joules();
                assert!(e >= 0.0);
                assert!(e < 10.0, "day {day} hour {hour}: implausible {e} J");
            }
        }
    }

    #[test]
    fn nights_harvest_essentially_nothing() {
        let k = KineticHarvester::shoe_piezo(2);
        for day in 0..7 {
            for hour in [0, 2, 4] {
                let e = k.hourly_energy(244, day, hour).joules();
                assert!(e < 0.05, "day {day} hour {hour}: {e} J while asleep");
            }
        }
    }

    #[test]
    fn daily_span_covers_the_paper_regime() {
        // Across a cohort of seeds and a week, the source must produce
        // both sub-floor hours and useful (> 0.18 J) hours.
        let mut any_useful = false;
        let mut any_idle = false;
        for seed in 0..16 {
            let k = KineticHarvester::shoe_piezo(seed);
            for day in 0..7 {
                for hour in 0..24 {
                    let e = k.hourly_energy(244, day, hour).joules();
                    any_useful |= e > 0.18;
                    any_idle |= e < 0.05;
                }
            }
        }
        assert!(any_useful, "no hour cleared the 0.18 J floor");
        assert!(any_idle, "no idle hours at all");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = KineticHarvester::shoe_piezo(3);
        let b = KineticHarvester::shoe_piezo(3);
        let c = KineticHarvester::shoe_piezo(4);
        let mut differs = false;
        for hour in 0..24 {
            assert_eq!(a.hourly_energy(100, 1, hour), b.hourly_energy(100, 1, hour));
            differs |= a.hourly_energy(100, 1, hour) != c.hourly_energy(100, 1, hour);
        }
        assert!(differs);
    }
}
