//! Error type for the harvesting substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the harvesting substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HarvestError {
    /// A parameter was out of range (message explains which).
    InvalidParameter(String),
    /// A trace file could not be parsed.
    Parse(String),
}

impl fmt::Display for HarvestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarvestError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            HarvestError::Parse(msg) => write!(f, "trace parse error: {msg}"),
        }
    }
}

impl Error for HarvestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(HarvestError::InvalidParameter("x".into())
            .to_string()
            .contains('x'));
        assert!(HarvestError::Parse("bad line".into())
            .to_string()
            .contains("bad line"));
    }
}
