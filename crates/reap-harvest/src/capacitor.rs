//! A capacitor-scale energy store for batteryless intermittent operation.
//!
//! Where [`Battery`](crate::Battery) holds tens of joules and carries a
//! node through whole nights, a supercapacitor holds *fractions* of a
//! joule: the node lives in charge bursts, browning out whenever the
//! capacitor voltage falls below the regulator's drop-out threshold and
//! rebooting once harvest has charged it back above the turn-on
//! threshold. The stored energy is quadratic in voltage
//! (`E = ½·C·V²`), so the voltage thresholds the hardware actually
//! switches on translate into the energy thresholds the simulator's
//! event core works in.

use reap_units::{Energy, Power};

use crate::HarvestError;

/// A small capacitor with voltage thresholds, leakage, and a charge
/// efficiency — the energy store of a batteryless node.
///
/// Invariants: `0 <= v_off < v_on <= v_rated`, so the usable burst
/// energy [`usable_burst_energy`](Capacitor::usable_burst_energy) is
/// strictly positive and the on/off hysteresis band is non-degenerate.
///
/// ```
/// use reap_harvest::Capacitor;
///
/// let cap = Capacitor::supercap_wearable();
/// // ½·C·V² at the rated voltage.
/// let e = 0.5 * cap.capacitance_farads() * cap.rated_voltage().powi(2);
/// assert!((cap.capacity().joules() - e).abs() < 1e-12);
/// // The turn-on threshold sits above the brownout threshold.
/// assert!(cap.turn_on_energy() > cap.brownout_energy());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    capacitance: f64,
    v_rated: f64,
    v_on: f64,
    v_off: f64,
    leakage: Power,
    charge_efficiency: f64,
    energy: Energy,
}

impl Capacitor {
    /// A 100 mF / 3.3 V supercapacitor as found on batteryless wearable
    /// motes: turn-on at 2.8 V, brownout at 1.8 V, 20 µW leakage, 90%
    /// charging efficiency, starting exactly at the brownout threshold
    /// (the node must harvest before it can boot).
    #[must_use]
    pub fn supercap_wearable() -> Capacitor {
        Capacitor::new(
            0.100,
            3.3,
            2.8,
            1.8,
            Power::from_microwatts(20.0),
            0.90,
            1.8,
        )
        .expect("constants are valid")
    }

    /// Creates a capacitor.
    ///
    /// `initial_voltage` sets the starting charge (clamped nowhere — it
    /// must already be within `[0, v_rated]`).
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when the capacitance is not
    /// positive, the thresholds violate `0 <= v_off < v_on <= v_rated`,
    /// the leakage is negative or non-finite, the charge efficiency is
    /// outside `(0, 1]`, or the initial voltage is outside
    /// `[0, v_rated]`.
    pub fn new(
        capacitance_farads: f64,
        v_rated: f64,
        v_on: f64,
        v_off: f64,
        leakage: Power,
        charge_efficiency: f64,
        initial_voltage: f64,
    ) -> Result<Capacitor, HarvestError> {
        if !capacitance_farads.is_finite() || capacitance_farads <= 0.0 {
            return Err(HarvestError::InvalidParameter(format!(
                "capacitance {capacitance_farads} F must be positive"
            )));
        }
        let thresholds_ok = v_off.is_finite()
            && v_on.is_finite()
            && v_rated.is_finite()
            && 0.0 <= v_off
            && v_off < v_on
            && v_on <= v_rated;
        if !thresholds_ok {
            return Err(HarvestError::InvalidParameter(format!(
                "voltage thresholds must satisfy 0 <= v_off ({v_off}) < v_on ({v_on}) \
                 <= v_rated ({v_rated})"
            )));
        }
        if !leakage.is_finite() || leakage.is_negative() {
            return Err(HarvestError::InvalidParameter(format!(
                "leakage {leakage} must be finite and non-negative"
            )));
        }
        if !charge_efficiency.is_finite() || charge_efficiency <= 0.0 || charge_efficiency > 1.0 {
            return Err(HarvestError::InvalidParameter(format!(
                "charge efficiency {charge_efficiency} outside (0, 1]"
            )));
        }
        if !initial_voltage.is_finite() || !(0.0..=v_rated).contains(&initial_voltage) {
            return Err(HarvestError::InvalidParameter(format!(
                "initial voltage {initial_voltage} outside [0, {v_rated}]"
            )));
        }
        let energy = Energy::from_joules(0.5 * capacitance_farads * initial_voltage.powi(2));
        Ok(Capacitor {
            capacitance: capacitance_farads,
            v_rated,
            v_on,
            v_off,
            leakage,
            charge_efficiency,
            energy,
        })
    }

    /// Capacitance in farads.
    #[must_use]
    pub fn capacitance_farads(&self) -> f64 {
        self.capacitance
    }

    /// Rated (maximum) voltage.
    #[must_use]
    pub fn rated_voltage(&self) -> f64 {
        self.v_rated
    }

    /// Voltage at which a dead node turns back on.
    #[must_use]
    pub fn turn_on_voltage(&self) -> f64 {
        self.v_on
    }

    /// Voltage below which the node browns out and dies.
    #[must_use]
    pub fn brownout_voltage(&self) -> f64 {
        self.v_off
    }

    /// Leakage power continuously drained from the store.
    #[must_use]
    pub fn leakage(&self) -> Power {
        self.leakage
    }

    /// Fraction of incoming harvest energy actually stored, in `(0, 1]`.
    #[must_use]
    pub fn charge_efficiency(&self) -> f64 {
        self.charge_efficiency
    }

    /// Energy stored at voltage `v`: `½·C·V²`.
    #[must_use]
    pub fn energy_at_voltage(&self, v: f64) -> Energy {
        Energy::from_joules(0.5 * self.capacitance * v * v)
    }

    /// Maximum storable energy (at the rated voltage).
    #[must_use]
    pub fn capacity(&self) -> Energy {
        self.energy_at_voltage(self.v_rated)
    }

    /// Stored energy at the turn-on threshold.
    #[must_use]
    pub fn turn_on_energy(&self) -> Energy {
        self.energy_at_voltage(self.v_on)
    }

    /// Stored energy at the brownout threshold.
    #[must_use]
    pub fn brownout_energy(&self) -> Energy {
        self.energy_at_voltage(self.v_off)
    }

    /// Energy available per charge burst: turn-on minus brownout
    /// threshold. Strictly positive by construction.
    #[must_use]
    pub fn usable_burst_energy(&self) -> Energy {
        self.turn_on_energy() - self.brownout_energy()
    }

    /// Current stored energy.
    #[must_use]
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Current voltage: `sqrt(2·E/C)`.
    #[must_use]
    pub fn voltage(&self) -> f64 {
        (2.0 * self.energy.joules() / self.capacitance).sqrt()
    }

    /// `true` when the stored energy has reached the turn-on threshold.
    #[must_use]
    pub fn can_turn_on(&self) -> bool {
        self.energy >= self.turn_on_energy()
    }

    /// Charges with `energy` (pre-efficiency). Returns the energy that
    /// *spilled* (could not be stored because the capacitor was full),
    /// reported at the input side, exactly like
    /// [`Battery::charge`](crate::Battery::charge).
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative.
    pub fn charge(&mut self, energy: Energy) -> Energy {
        assert!(!energy.is_negative(), "cannot charge negative energy");
        let storable = energy * self.charge_efficiency;
        let headroom = self.capacity() - self.energy;
        let stored = storable.min(headroom);
        self.energy += stored;
        (storable - stored) / self.charge_efficiency
    }

    /// Draws up to `energy` from the store (down to zero — the *caller*
    /// enforces the brownout floor, because crossing it is an event, not
    /// a silent clamp). Returns the energy actually delivered.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative.
    pub fn draw(&mut self, energy: Energy) -> Energy {
        assert!(!energy.is_negative(), "cannot draw negative energy");
        let drawn = energy.min(self.energy);
        self.energy -= drawn;
        drawn
    }

    /// Applies leakage over `seconds`, returning the energy actually
    /// leaked (never more than was stored).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative.
    pub fn leak(&mut self, seconds: f64) -> Energy {
        assert!(seconds >= 0.0, "cannot leak for negative time");
        let leaked = (self.leakage * reap_units::TimeSpan::from_seconds(seconds)).min(self.energy);
        self.energy -= leaked;
        leaked
    }

    /// Overwrites the stored energy — state reinjection for the event
    /// core's closed-form off-state advancement.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when `energy` is not finite or
    /// outside `[0, capacity]`.
    pub fn set_energy(&mut self, energy: Energy) -> Result<(), HarvestError> {
        if !energy.is_finite() || energy.is_negative() || energy > self.capacity() {
            return Err(HarvestError::InvalidParameter(format!(
                "energy {energy} outside [0, {}]",
                self.capacity()
            )));
        }
        self.energy = energy;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joules(j: f64) -> Energy {
        Energy::from_joules(j)
    }

    #[test]
    fn validation() {
        let leak = Power::from_microwatts(20.0);
        assert!(Capacitor::new(0.0, 3.3, 2.8, 1.8, leak, 0.9, 1.8).is_err());
        assert!(Capacitor::new(0.1, 3.3, 1.8, 2.8, leak, 0.9, 1.8).is_err());
        assert!(Capacitor::new(0.1, 3.3, 2.8, 2.8, leak, 0.9, 1.8).is_err());
        assert!(Capacitor::new(0.1, 2.0, 2.8, 1.8, leak, 0.9, 1.8).is_err());
        assert!(Capacitor::new(0.1, 3.3, 2.8, -0.1, leak, 0.9, 1.8).is_err());
        assert!(Capacitor::new(0.1, 3.3, 2.8, 1.8, Power::from_watts(-1.0), 0.9, 1.8).is_err());
        assert!(Capacitor::new(0.1, 3.3, 2.8, 1.8, leak, 0.0, 1.8).is_err());
        assert!(Capacitor::new(0.1, 3.3, 2.8, 1.8, leak, 1.1, 1.8).is_err());
        assert!(Capacitor::new(0.1, 3.3, 2.8, 1.8, leak, 0.9, 3.4).is_err());
        assert!(Capacitor::new(0.1, 3.3, 2.8, 1.8, leak, 0.9, 0.0).is_ok());
    }

    #[test]
    fn energy_is_quadratic_in_voltage() {
        let cap = Capacitor::supercap_wearable();
        assert!((cap.capacity().joules() - 0.5445).abs() < 1e-12);
        assert!((cap.turn_on_energy().joules() - 0.392).abs() < 1e-12);
        assert!((cap.brownout_energy().joules() - 0.162).abs() < 1e-12);
        assert!((cap.usable_burst_energy().joules() - 0.23).abs() < 1e-12);
        // Starts at the brownout threshold: cannot boot yet.
        assert!(!cap.can_turn_on());
        assert!((cap.voltage() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn charge_respects_capacity_efficiency_and_reports_spill() {
        let mut cap = Capacitor::supercap_wearable();
        // Stores 90% of what comes in.
        let spill = cap.charge(joules(0.1));
        assert_eq!(spill, Energy::ZERO);
        assert!((cap.energy().joules() - (0.162 + 0.09)).abs() < 1e-12);
        // Overfilling spills at the input side.
        let spill = cap.charge(joules(10.0));
        assert!((cap.energy() - cap.capacity()).abs().joules() < 1e-12);
        let stored = cap.capacity().joules() - 0.252;
        assert!((spill.joules() - (10.0 - stored / 0.9)).abs() < 1e-9);
    }

    #[test]
    fn draw_goes_down_to_zero_not_the_brownout_floor() {
        let mut cap = Capacitor::supercap_wearable();
        let got = cap.draw(joules(1.0));
        assert!((got.joules() - 0.162).abs() < 1e-12);
        assert_eq!(cap.energy(), Energy::ZERO);
    }

    #[test]
    fn leakage_drains_but_never_goes_negative() {
        let mut cap = Capacitor::supercap_wearable();
        // 20 µW for 1000 s = 20 mJ.
        let leaked = cap.leak(1000.0);
        assert!((leaked.joules() - 0.02).abs() < 1e-12);
        assert!((cap.energy().joules() - 0.142).abs() < 1e-12);
        // A very long leak empties the store exactly.
        let leaked = cap.leak(1e9);
        assert!((leaked.joules() - 0.142).abs() < 1e-12);
        assert_eq!(cap.energy(), Energy::ZERO);
    }

    #[test]
    fn set_energy_reinjects_exact_state() {
        let mut cap = Capacitor::supercap_wearable();
        let exact = joules(0.123456789012345);
        cap.set_energy(exact).unwrap();
        assert_eq!(cap.energy(), exact);
        assert!(cap.set_energy(joules(-0.1)).is_err());
        assert!(cap.set_energy(joules(1.0)).is_err());
        assert!(cap.set_energy(joules(f64::NAN)).is_err());
        assert_eq!(cap.energy(), exact);
    }

    #[test]
    fn turn_on_hysteresis() {
        let mut cap = Capacitor::supercap_wearable();
        cap.set_energy(cap.turn_on_energy()).unwrap();
        assert!(cap.can_turn_on());
        cap.set_energy(cap.turn_on_energy() - joules(1e-6)).unwrap();
        assert!(!cap.can_turn_on());
    }
}
