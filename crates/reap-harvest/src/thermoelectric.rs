//! Thermoelectric body-heat harvesting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reap_data::DailyRoutine;
use reap_units::{Energy, Power, TimeSpan};

use crate::{HarvestError, HarvestSource};

/// A thermoelectric generator (TEG) worn against the skin, harvesting the
/// temperature gradient between the body and ambient air.
///
/// Unlike photovoltaics, body heat never turns off: the TEG trickles
/// energy 24/7, but at the *bottom* of the paper's 0.18–10 J regime —
/// resting hours hover right around the 0.18 J off-state floor, making
/// this the stress source for "can the policy keep the device alive at
/// all" questions. The gradient couples to the wearer's
/// [`DailyRoutine`]:
///
/// * a higher metabolic rate raises skin temperature and perfusion
///   (ΔT grows ~linearly in METs above resting), and
/// * walking and driving add forced-air convection over the cold plate
///   (air moving past the wearer), which widens ΔT further — the reason
///   commute hours out-harvest desk hours even at similar METs.
///
/// Ambient temperature follows the season: winter days (cold ambient)
/// widen the gradient, summer days narrow it.
///
/// # Examples
///
/// ```
/// use reap_harvest::{BodyHeatTeg, HarvestSource};
///
/// let teg = BodyHeatTeg::wrist_wearable(5);
/// // Never off: even 3 am harvests a trickle…
/// assert!(teg.hourly_energy(244, 0, 3).joules() > 0.0);
/// // …and a weekday commute beats sleeping.
/// assert!(
///     teg.hourly_energy(244, 0, 8).joules() > teg.hourly_energy(244, 0, 3).joules()
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BodyHeatTeg {
    seed: u64,
    routine: DailyRoutine,
    /// Electrical output per kelvin of gradient (module + boost
    /// converter), in W/K.
    conversion_w_per_k: f64,
    /// Skin-to-ambient gradient at rest in a temperate room, in K.
    base_delta_t_k: f64,
}

impl BodyHeatTeg {
    /// The calibrated wrist TEG: ~60 µW/K effective conversion and a
    /// ~1.1 K resting gradient, yielding ≈0.25 J resting hours and
    /// ≈0.4–0.7 J active ones.
    #[must_use]
    pub fn wrist_wearable(seed: u64) -> BodyHeatTeg {
        BodyHeatTeg::new(seed, 60e-6, 1.1).expect("calibrated constants are valid")
    }

    /// Creates a TEG model.
    ///
    /// # Errors
    ///
    /// [`HarvestError::InvalidParameter`] when the conversion factor or
    /// resting gradient is non-positive or non-finite.
    pub fn new(
        seed: u64,
        conversion_w_per_k: f64,
        base_delta_t_k: f64,
    ) -> Result<BodyHeatTeg, HarvestError> {
        for (name, v) in [
            ("conversion factor", conversion_w_per_k),
            ("resting gradient", base_delta_t_k),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(HarvestError::InvalidParameter(format!(
                    "{name} {v} must be positive"
                )));
            }
        }
        Ok(BodyHeatTeg {
            seed,
            routine: DailyRoutine::new(seed),
            conversion_w_per_k,
            base_delta_t_k,
        })
    }

    /// Seasonal ambient factor: winter cold widens the gradient, summer
    /// heat narrows it (±25% around the annual mean, peaking mid-January).
    fn seasonal_factor(day_of_year: u32) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (f64::from(day_of_year) - 15.0) / 365.0;
        1.0 + 0.25 * phase.cos()
    }
}

impl HarvestSource for BodyHeatTeg {
    fn name(&self) -> &'static str {
        "body-heat-teg"
    }

    fn hourly_energy(&self, day_of_year: u32, day_index: u32, hour: u32) -> Energy {
        let mix = self.routine.hourly_mix(day_index, hour);
        // Metabolic heating above resting widens the gradient…
        let met_excess = (mix.metabolic_rate_met() - 1.0).max(0.0);
        // …and locomotion/riding adds forced convection on the cold side.
        let airflow = mix.fraction(reap_data::Activity::Walk)
            + mix.fraction(reap_data::Activity::Drive)
            + mix.fraction(reap_data::Activity::Jump);
        let delta_t = (self.base_delta_t_k + 0.30 * met_excess + 0.60 * airflow)
            * Self::seasonal_factor(day_of_year);
        // Clothing and micro-climate jitter per (seed, day, hour).
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x94D0_49BB_1331_11EB)
                .wrapping_add(u64::from(day_index) << 8)
                .wrapping_add(u64::from(hour)),
        );
        let jitter = rng.gen_range(0.85..1.15);
        Power::from_watts(self.conversion_w_per_k * delta_t * jitter) * TimeSpan::from_hours(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(BodyHeatTeg::new(0, 0.0, 1.0).is_err());
        assert!(BodyHeatTeg::new(0, 60e-6, -1.0).is_err());
        assert!(BodyHeatTeg::new(0, f64::NAN, 1.0).is_err());
        assert!(BodyHeatTeg::new(0, 60e-6, 1.1).is_ok());
    }

    #[test]
    fn always_positive_and_near_the_floor() {
        let teg = BodyHeatTeg::wrist_wearable(1);
        for day in 0..14 {
            for hour in 0..24 {
                let e = teg.hourly_energy(244, day, hour).joules();
                assert!(e > 0.0, "day {day} hour {hour} went dark");
                assert!(e < 1.5, "day {day} hour {hour}: implausible {e} J");
            }
        }
    }

    #[test]
    fn active_hours_beat_resting_hours() {
        // Mean over two weeks to average out jitter.
        let teg = BodyHeatTeg::wrist_wearable(2);
        let mean = |hour: u32| {
            (0..14)
                .map(|d| teg.hourly_energy(244, d, hour).joules())
                .sum::<f64>()
                / 14.0
        };
        // Weekday commute/lunch hours vs the dead of night.
        assert!(mean(8) > 1.15 * mean(3), "{} vs {}", mean(8), mean(3));
        assert!(mean(12) > mean(3));
    }

    #[test]
    fn winter_beats_summer() {
        let teg = BodyHeatTeg::wrist_wearable(3);
        // Same (day_index, hour) cell — only the calendar day changes, so
        // the routine and jitter are identical and seasonality isolates.
        let january = teg.hourly_energy(15, 0, 12).joules();
        let july = teg.hourly_energy(196, 0, 12).joules();
        assert!(january > 1.3 * july, "january {january} vs july {july}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BodyHeatTeg::wrist_wearable(4);
        let b = BodyHeatTeg::wrist_wearable(4);
        let c = BodyHeatTeg::wrist_wearable(5);
        let mut differs = false;
        for hour in 0..24 {
            assert_eq!(a.hourly_energy(100, 1, hour), b.hourly_energy(100, 1, hour));
            differs |= a.hourly_energy(100, 1, hour) != c.hourly_energy(100, 1, hour);
        }
        assert!(differs);
    }
}
