//! Copy-on-perturb harvest traces.
//!
//! A fleet puts hundreds of users on the *same* harvest source; giving
//! each a fully materialized month (`days * 24` `Energy` values) costs
//! `O(users * hours)` memory and — worse — `O(users * hours)` calls into
//! the physical source models. A [`TracePerturbation`] instead derives a
//! user's month from one shared base trace plus two numbers: a
//! multiplicative gain (panel size / skin coupling / gait vigour) and a
//! small diurnal phase shift (schedule offset within the day). Per-user
//! storage drops to 16 bytes, and any user's exact trace can still be
//! materialized on demand with [`TracePerturbation::apply`] for scalar
//! replay.

use reap_units::Energy;

use crate::HarvestTrace;

/// Gain bounds: every user harvests within ±15% of the base trace.
const GAIN_LO: f64 = 0.85;
const GAIN_SPAN: f64 = 0.30;
/// Phase shifts rotate the diurnal profile by 0..=3 hours.
const PHASE_MOD: u64 = 4;

/// A user's deviation from a shared base harvest trace: a multiplicative
/// gain and a cyclic hour-of-day phase shift.
///
/// Both derive deterministically from a seed ([`TracePerturbation::from_seed`]),
/// so a perturbation is a pure function of `(master seed, user index)` —
/// the property fleet replay relies on. The perturbed hour `(day, hour)`
/// reads the base hour `(day, (hour + phase) % 24)` scaled by `gain`:
///
/// ```
/// use reap_harvest::{HarvestTrace, TracePerturbation};
///
/// let base = HarvestTrace::september_like(7);
/// let p = TracePerturbation::from_seed(42);
/// let mine = p.apply(&base).unwrap();
/// assert_eq!(mine.days(), base.days());
/// let shifted = (0 + p.phase_hours()) % 24;
/// assert_eq!(
///     mine.energy(3, 0).joules(),
///     base.energy(3, shifted).joules() * p.gain()
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePerturbation {
    gain: f64,
    phase_hours: u32,
}

impl TracePerturbation {
    /// The identity perturbation: gain 1, no phase shift.
    #[must_use]
    pub fn identity() -> TracePerturbation {
        TracePerturbation {
            gain: 1.0,
            phase_hours: 0,
        }
    }

    /// Derives a perturbation from `seed` via two splitmix64 draws:
    /// gain uniform in `[0.85, 1.15)`, phase uniform in `0..=3` hours.
    #[must_use]
    pub fn from_seed(seed: u64) -> TracePerturbation {
        let a = splitmix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let b = splitmix64(seed.wrapping_add(0x3C6E_F372_FE94_F82A));
        // 53 high bits -> uniform in [0, 1).
        // reap-lint: allow(unsafe:float-cast) -- 53-bit mantissa math: both operands fit in 53 bits, conversion exact
        let unit = (a >> 11) as f64 / (1u64 << 53) as f64;
        TracePerturbation {
            gain: GAIN_LO + GAIN_SPAN * unit,
            phase_hours: (b % PHASE_MOD) as u32,
        }
    }

    /// The multiplicative gain, in `[0.85, 1.15)` for seeded
    /// perturbations.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The cyclic hour-of-day phase shift, in `0..24`.
    #[must_use]
    pub fn phase_hours(&self) -> u32 {
        self.phase_hours
    }

    /// The base-trace hour-of-day this perturbation reads for local hour
    /// `hour_of_day`. SoA engines use this to index shared base traces
    /// directly; [`TracePerturbation::apply`] uses it to materialize.
    #[must_use]
    pub fn source_hour(&self, hour_of_day: u32) -> u32 {
        (hour_of_day + self.phase_hours) % 24
    }

    /// Materializes the perturbed trace — bit-identical, hour for hour,
    /// to what an SoA engine computes from the base trace and this
    /// perturbation (`base[day][source_hour] * gain`, one multiplication,
    /// no intermediate rounding).
    ///
    /// # Errors
    ///
    /// Propagates [`HarvestTrace::new`] validation — possible only for
    /// hand-built perturbations (e.g. a negative gain); seeded gains keep
    /// every perturbed hour finite and non-negative.
    pub fn apply(&self, base: &HarvestTrace) -> Result<HarvestTrace, crate::HarvestError> {
        let days = base.days();
        let mut hourly = Vec::with_capacity(base.len_hours());
        for day in 0..days {
            for hour in 0..24 {
                let j = base.energy(day, self.source_hour(hour)).joules() * self.gain;
                hourly.push(Energy::from_joules(j));
            }
        }
        HarvestTrace::new(base.start_day_of_year(), hourly)
    }
}

/// The splitmix64 finalizer (same mixing the harvest sources use for
/// per-hour noise).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_perturbations_are_deterministic_and_bounded() {
        for seed in 0..2000u64 {
            let p = TracePerturbation::from_seed(seed);
            assert_eq!(p, TracePerturbation::from_seed(seed), "seed {seed}");
            assert!(
                (GAIN_LO..GAIN_LO + GAIN_SPAN).contains(&p.gain()),
                "seed {seed}"
            );
            assert!(p.phase_hours() < PHASE_MOD as u32, "seed {seed}");
        }
        // Neighbouring seeds decorrelate.
        let a = TracePerturbation::from_seed(1);
        let b = TracePerturbation::from_seed(2);
        assert_ne!(a.gain(), b.gain());
    }

    #[test]
    fn apply_scales_and_rotates() {
        let base = HarvestTrace::september_like(3);
        let p = TracePerturbation::from_seed(99);
        let mine = p.apply(&base).unwrap();
        assert_eq!(mine.len_hours(), base.len_hours());
        assert_eq!(mine.start_day_of_year(), base.start_day_of_year());
        for day in 0..base.days() {
            for hour in 0..24 {
                let want = base.energy(day, p.source_hour(hour)).joules() * p.gain();
                assert_eq!(
                    mine.energy(day, hour).joules(),
                    want,
                    "day {day} hour {hour}"
                );
            }
        }
    }

    #[test]
    fn identity_apply_is_a_copy() {
        let base = HarvestTrace::september_like(11);
        let same = TracePerturbation::identity().apply(&base).unwrap();
        assert_eq!(same, base);
    }

    #[test]
    fn total_energy_scales_with_gain_under_zero_phase() {
        let base = HarvestTrace::september_like(5);
        let p = TracePerturbation::from_seed(7);
        let mine = p.apply(&base).unwrap();
        // Phase only rotates within days, so monthly totals scale by the
        // gain regardless of the shift.
        let want = base.total().joules() * p.gain();
        assert!((mine.total().joules() - want).abs() < 1e-6);
    }
}
