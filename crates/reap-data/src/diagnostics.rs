//! Dataset diagnostics: quantifying how hard the synthetic study is.
//!
//! The substitution argument in DESIGN.md rests on the synthetic cohort
//! having the right *separability structure*: postures must be trivially
//! separable with full sensing but collapse into confusable pairs
//! (sit/drive, stand/lie) when only the stretch channel is available.
//! This module measures that structure directly — a Fisher-style
//! between/within class distance on simple channel summaries — so tests
//! can pin it instead of trusting the generator by eye.

use crate::{Activity, Dataset};

/// Per-class mean and variance of a scalar signal summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMoment {
    /// Mean of the summary over the class's windows.
    pub mean: f64,
    /// Variance of the summary over the class's windows.
    pub variance: f64,
    /// Windows observed.
    pub count: usize,
}

/// Which scalar summary of a window to analyze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Mean of one accelerometer axis (0 = x, 1 = y, 2 = z).
    AccelMean(usize),
    /// Standard deviation of one accelerometer axis.
    AccelStd(usize),
    /// Mean of the stretch channel.
    StretchMean,
    /// Standard deviation of the stretch channel.
    StretchStd,
}

fn summarize(window: &crate::ActivityWindow, channel: Channel) -> f64 {
    let stats = |x: &[f64]| -> (f64, f64) {
        let n = x.len() as f64;
        let mean = x.iter().sum::<f64>() / n;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        (mean, var)
    };
    match channel {
        Channel::AccelMean(axis) => stats(&window.accel[axis]).0,
        Channel::AccelStd(axis) => stats(&window.accel[axis]).1.sqrt(),
        Channel::StretchMean => stats(&window.stretch).0,
        Channel::StretchStd => stats(&window.stretch).1.sqrt(),
    }
}

/// Computes per-class moments of `channel` over a dataset.
///
/// Classes with no windows get `count == 0` and NaN moments.
#[must_use]
pub fn class_moments(dataset: &Dataset, channel: Channel) -> [ClassMoment; Activity::COUNT] {
    let mut sums = [0.0f64; Activity::COUNT];
    let mut sq_sums = [0.0f64; Activity::COUNT];
    let mut counts = [0usize; Activity::COUNT];
    for w in dataset.windows() {
        let v = summarize(w, channel);
        let k = w.label.index();
        sums[k] += v;
        sq_sums[k] += v * v;
        counts[k] += 1;
    }
    core::array::from_fn(|k| {
        if counts[k] == 0 {
            ClassMoment {
                mean: f64::NAN,
                variance: f64::NAN,
                count: 0,
            }
        } else {
            let n = counts[k] as f64;
            let mean = sums[k] / n;
            ClassMoment {
                mean,
                variance: (sq_sums[k] / n - mean * mean).max(0.0),
                count: counts[k],
            }
        }
    })
}

/// Fisher separability of two classes on a channel:
/// `(mu_a - mu_b)^2 / (var_a + var_b)`. Below ~1 the classes overlap
/// heavily; above ~4 they are nearly linearly separable on this channel
/// alone.
///
/// Returns `None` when either class has no windows.
#[must_use]
pub fn fisher_separability(
    dataset: &Dataset,
    a: Activity,
    b: Activity,
    channel: Channel,
) -> Option<f64> {
    let moments = class_moments(dataset, channel);
    let ma = moments[a.index()];
    let mb = moments[b.index()];
    if ma.count == 0 || mb.count == 0 {
        return None;
    }
    let spread = ma.variance + mb.variance;
    if spread <= 0.0 {
        return Some(f64::INFINITY);
    }
    Some((ma.mean - mb.mean).powi(2) / spread)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::generate(8, 1200, 42)
    }

    #[test]
    fn moments_cover_every_class() {
        let m = class_moments(&dataset(), Channel::StretchMean);
        for (k, moment) in m.iter().enumerate() {
            assert!(moment.count > 0, "class {k} empty");
            assert!(moment.mean.is_finite());
            assert!(moment.variance >= 0.0);
        }
    }

    #[test]
    fn stretch_separates_postures_but_not_the_confusable_pairs() {
        let d = dataset();
        // Sit vs stand: far apart on the stretch mean (bent vs straight).
        let sit_stand =
            fisher_separability(&d, Activity::Sit, Activity::Stand, Channel::StretchMean).unwrap();
        assert!(
            sit_stand > 4.0,
            "sit/stand stretch separability {sit_stand}"
        );
        // Sit vs drive: heavily overlapping — the designed DP5 weakness.
        let sit_drive =
            fisher_separability(&d, Activity::Sit, Activity::Drive, Channel::StretchMean).unwrap();
        assert!(
            sit_drive < 1.0,
            "sit/drive stretch separability {sit_drive}"
        );
        // Stand vs lie: also overlapping on stretch alone.
        let stand_lie =
            fisher_separability(&d, Activity::Stand, Activity::LieDown, Channel::StretchMean)
                .unwrap();
        assert!(
            stand_lie < 1.5,
            "stand/lie stretch separability {stand_lie}"
        );
    }

    #[test]
    fn accelerometer_recovers_the_confusable_pairs() {
        let d = dataset();
        // Stand vs lie: the x-axis gravity mean separates them sharply.
        let stand_lie = fisher_separability(
            &d,
            Activity::Stand,
            Activity::LieDown,
            Channel::AccelMean(0),
        )
        .unwrap();
        assert!(stand_lie > 4.0, "stand/lie accel separability {stand_lie}");
        // Sit vs drive: the z-axis AC content (vibration) carries far more
        // signal than the stretch baseline, but smooth roads keep even it
        // from being trivially separable — drive stays the hard class, as
        // in real HAR studies.
        let sit_drive_accel =
            fisher_separability(&d, Activity::Sit, Activity::Drive, Channel::AccelStd(2)).unwrap();
        let sit_drive_stretch =
            fisher_separability(&d, Activity::Sit, Activity::Drive, Channel::StretchMean).unwrap();
        assert!(
            sit_drive_accel > 2.0 * sit_drive_stretch,
            "accel-std {sit_drive_accel} should dominate stretch {sit_drive_stretch}"
        );
        assert!(
            sit_drive_accel < 4.0,
            "sit/drive must stay hard: {sit_drive_accel}"
        );
    }

    #[test]
    fn dynamic_activities_stand_out_on_accel_std() {
        let d = dataset();
        let walk_sit =
            fisher_separability(&d, Activity::Walk, Activity::Sit, Channel::AccelStd(2)).unwrap();
        assert!(walk_sit > 4.0, "walk/sit separability {walk_sit}");
        let jump_walk =
            fisher_separability(&d, Activity::Jump, Activity::Walk, Channel::AccelStd(2)).unwrap();
        assert!(jump_walk > 1.0, "jump/walk separability {jump_walk}");
    }

    #[test]
    fn stretch_std_separates_walk_from_postures() {
        let d = dataset();
        let walk_stand =
            fisher_separability(&d, Activity::Walk, Activity::Stand, Channel::StretchStd).unwrap();
        assert!(walk_stand > 4.0, "walk/stand stretch-std {walk_stand}");
    }
}
