//! The activity label set.

use std::fmt;

/// The activities recognized by the HAR application.
///
/// The paper's user studies cover six activities — *sit, stand, walk, jump,
/// drive, lie down* — plus *transitions* among them, giving a 7-class
/// problem (which matches the 7-output neural-network structures of the
/// paper's Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Activity {
    /// Sitting on a chair (knee bent, torso upright).
    Sit,
    /// Standing (leg straight, torso upright).
    Stand,
    /// Walking at the user's natural cadence.
    Walk,
    /// Jumping in place.
    Jump,
    /// Sitting in a moving vehicle (posture like sitting plus road
    /// vibration).
    Drive,
    /// Lying down (torso horizontal).
    LieDown,
    /// A transition between two postures within the window.
    Transition,
}

impl Activity {
    /// All activities in index order.
    pub const ALL: [Activity; 7] = [
        Activity::Sit,
        Activity::Stand,
        Activity::Walk,
        Activity::Jump,
        Activity::Drive,
        Activity::LieDown,
        Activity::Transition,
    ];

    /// Number of classes.
    pub const COUNT: usize = 7;

    /// Stable class index in `0..Activity::COUNT`.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Activity::Sit => 0,
            Activity::Stand => 1,
            Activity::Walk => 2,
            Activity::Jump => 3,
            Activity::Drive => 4,
            Activity::LieDown => 5,
            Activity::Transition => 6,
        }
    }

    /// Inverse of [`Activity::index`].
    ///
    /// Returns `None` when `index >= Activity::COUNT`.
    #[must_use]
    pub fn from_index(index: usize) -> Option<Activity> {
        Activity::ALL.get(index).copied()
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Activity::Sit => "sit",
            Activity::Stand => "stand",
            Activity::Walk => "walk",
            Activity::Jump => "jump",
            Activity::Drive => "drive",
            Activity::LieDown => "lie down",
            Activity::Transition => "transition",
        }
    }

    /// `true` for the static postures (sit, stand, drive, lie down) whose
    /// accelerometer signal is dominated by the gravity orientation.
    #[must_use]
    pub fn is_static_posture(self) -> bool {
        matches!(
            self,
            Activity::Sit | Activity::Stand | Activity::Drive | Activity::LieDown
        )
    }

    /// Characteristic RMS *dynamic* (gravity-removed) acceleration of the
    /// activity, in g.
    ///
    /// These are the cohort-typical magnitudes of the oscillatory terms the
    /// waveform models in this crate synthesize: the gait and heel-strike
    /// sinusoids for walking, the take-off/flight impulse train for jumping,
    /// the 3–20 Hz road-vibration band for driving, and postural
    /// tremor/sway for the static postures. Kinetic energy harvesters scale
    /// with this quantity (harvested power grows with the square of the
    /// driving acceleration), so it is the coupling constant between the
    /// activity stream and the `reap-harvest` motion-driven sources.
    ///
    /// # Examples
    ///
    /// ```
    /// use reap_data::Activity;
    ///
    /// // Jumping shakes a harvester hardest; lying down barely moves it.
    /// assert!(Activity::Jump.motion_intensity() > Activity::Walk.motion_intensity());
    /// assert!(Activity::Walk.motion_intensity() > 10.0 * Activity::LieDown.motion_intensity());
    /// ```
    #[must_use]
    pub fn motion_intensity(self) -> f64 {
        match self {
            Activity::Sit => 0.025,
            Activity::Stand => 0.04,
            Activity::Walk => 0.42,
            Activity::Jump => 1.60,
            Activity::Drive => 0.11,
            Activity::LieDown => 0.012,
            Activity::Transition => 0.30,
        }
    }

    /// Typical metabolic rate of the activity in METs (multiples of the
    /// resting metabolic rate).
    ///
    /// Standard compendium values: lying ≈ 1, sitting ≈ 1.3, standing ≈
    /// 1.6, driving ≈ 1.5, walking ≈ 3.5, jumping ≈ 8. Thermoelectric
    /// body-heat harvesters couple to this: a higher metabolic rate raises
    /// skin temperature and perfusion, widening the ΔT across the
    /// generator.
    ///
    /// # Examples
    ///
    /// ```
    /// use reap_data::Activity;
    ///
    /// assert_eq!(Activity::LieDown.metabolic_rate_met(), 1.0);
    /// assert!(Activity::Walk.metabolic_rate_met() > Activity::Sit.metabolic_rate_met());
    /// ```
    #[must_use]
    pub fn metabolic_rate_met(self) -> f64 {
        match self {
            Activity::Sit => 1.3,
            Activity::Stand => 1.6,
            Activity::Walk => 3.5,
            Activity::Jump => 8.0,
            Activity::Drive => 1.5,
            Activity::LieDown => 1.0,
            Activity::Transition => 2.0,
        }
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, &a) in Activity::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(Activity::from_index(i), Some(a));
        }
        assert_eq!(Activity::from_index(7), None);
    }

    #[test]
    fn all_has_no_duplicates() {
        for (i, a) in Activity::ALL.iter().enumerate() {
            for b in &Activity::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(Activity::ALL.len(), Activity::COUNT);
    }

    #[test]
    fn labels_are_distinct_and_nonempty() {
        let labels: Vec<&str> = Activity::ALL.iter().map(|a| a.label()).collect();
        for (i, l) in labels.iter().enumerate() {
            assert!(!l.is_empty());
            for m in &labels[i + 1..] {
                assert_ne!(l, m);
            }
        }
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Activity::LieDown.to_string(), "lie down");
    }

    #[test]
    fn motion_intensity_orders_dynamic_over_static() {
        for a in Activity::ALL {
            assert!(a.motion_intensity() > 0.0);
            assert!(a.metabolic_rate_met() >= 1.0);
        }
        assert!(Activity::Jump.motion_intensity() > Activity::Walk.motion_intensity());
        assert!(Activity::Walk.motion_intensity() > Activity::Drive.motion_intensity());
        assert!(Activity::Drive.motion_intensity() > Activity::Sit.motion_intensity());
        assert!(Activity::Sit.motion_intensity() > Activity::LieDown.motion_intensity());
        assert!(Activity::Jump.metabolic_rate_met() > Activity::Walk.metabolic_rate_met());
        assert!(Activity::Walk.metabolic_rate_met() > Activity::Stand.metabolic_rate_met());
    }

    #[test]
    fn posture_classification() {
        assert!(Activity::Sit.is_static_posture());
        assert!(Activity::Drive.is_static_posture());
        assert!(!Activity::Walk.is_static_posture());
        assert!(!Activity::Transition.is_static_posture());
    }
}
