//! The activity label set.

use std::fmt;

/// The activities recognized by the HAR application.
///
/// The paper's user studies cover six activities — *sit, stand, walk, jump,
/// drive, lie down* — plus *transitions* among them, giving a 7-class
/// problem (which matches the 7-output neural-network structures of the
/// paper's Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Activity {
    /// Sitting on a chair (knee bent, torso upright).
    Sit,
    /// Standing (leg straight, torso upright).
    Stand,
    /// Walking at the user's natural cadence.
    Walk,
    /// Jumping in place.
    Jump,
    /// Sitting in a moving vehicle (posture like sitting plus road
    /// vibration).
    Drive,
    /// Lying down (torso horizontal).
    LieDown,
    /// A transition between two postures within the window.
    Transition,
}

impl Activity {
    /// All activities in index order.
    pub const ALL: [Activity; 7] = [
        Activity::Sit,
        Activity::Stand,
        Activity::Walk,
        Activity::Jump,
        Activity::Drive,
        Activity::LieDown,
        Activity::Transition,
    ];

    /// Number of classes.
    pub const COUNT: usize = 7;

    /// Stable class index in `0..Activity::COUNT`.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Activity::Sit => 0,
            Activity::Stand => 1,
            Activity::Walk => 2,
            Activity::Jump => 3,
            Activity::Drive => 4,
            Activity::LieDown => 5,
            Activity::Transition => 6,
        }
    }

    /// Inverse of [`Activity::index`].
    ///
    /// Returns `None` when `index >= Activity::COUNT`.
    #[must_use]
    pub fn from_index(index: usize) -> Option<Activity> {
        Activity::ALL.get(index).copied()
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Activity::Sit => "sit",
            Activity::Stand => "stand",
            Activity::Walk => "walk",
            Activity::Jump => "jump",
            Activity::Drive => "drive",
            Activity::LieDown => "lie down",
            Activity::Transition => "transition",
        }
    }

    /// `true` for the static postures (sit, stand, drive, lie down) whose
    /// accelerometer signal is dominated by the gravity orientation.
    #[must_use]
    pub fn is_static_posture(self) -> bool {
        matches!(
            self,
            Activity::Sit | Activity::Stand | Activity::Drive | Activity::LieDown
        )
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, &a) in Activity::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(Activity::from_index(i), Some(a));
        }
        assert_eq!(Activity::from_index(7), None);
    }

    #[test]
    fn all_has_no_duplicates() {
        for (i, a) in Activity::ALL.iter().enumerate() {
            for b in &Activity::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(Activity::ALL.len(), Activity::COUNT);
    }

    #[test]
    fn labels_are_distinct_and_nonempty() {
        let labels: Vec<&str> = Activity::ALL.iter().map(|a| a.label()).collect();
        for (i, l) in labels.iter().enumerate() {
            assert!(!l.is_empty());
            for m in &labels[i + 1..] {
                assert_ne!(l, m);
            }
        }
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Activity::LieDown.to_string(), "lie down");
    }

    #[test]
    fn posture_classification() {
        assert!(Activity::Sit.is_static_posture());
        assert!(Activity::Drive.is_static_posture());
        assert!(!Activity::Walk.is_static_posture());
        assert!(!Activity::Transition.is_static_posture());
    }
}
