//! Per-user biomechanical parameters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Biomechanical and sensor-mounting parameters of one study participant.
///
/// Each of the paper's 14 users walks, jumps, and fidgets differently; the
/// recognition accuracy "is a strong function of the users" (Sec. 1). The
/// profile captures that variability with a handful of parameters drawn
/// deterministically from a cohort seed, so the whole study is reproducible
/// from a single `u64`.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Participant identifier, `0..cohort size`.
    pub id: u8,
    /// Natural walking cadence in Hz (steps of one leg).
    pub gait_freq_hz: f64,
    /// Peak gait acceleration amplitude in g.
    pub gait_amplitude: f64,
    /// Jumping rate in Hz.
    pub jump_freq_hz: f64,
    /// Peak jump acceleration amplitude in g.
    pub jump_amplitude: f64,
    /// Postural tremor standard deviation in g (static activities).
    pub posture_tremor_g: f64,
    /// Accelerometer measurement noise standard deviation in g.
    pub accel_noise_g: f64,
    /// Multiplicative gain of the stretch sensor (mounting tightness).
    pub stretch_gain: f64,
    /// Additive offset of the stretch sensor reading (mounting position).
    pub stretch_offset: f64,
    /// Device mounting tilt in radians (pitch: rotates gravity between
    /// the y and z axes).
    pub mount_tilt_rad: f64,
    /// Device mounting yaw in radians (rotates the lateral/forward axes
    /// into each other — why single-axis design points lose accuracy
    /// across users).
    pub mount_yaw_rad: f64,
}

impl UserProfile {
    /// Generates the profile of participant `id` for a given cohort seed.
    ///
    /// The same `(id, seed)` pair always yields the same profile, and
    /// different ids yield independent parameter draws.
    #[must_use]
    pub fn generate(id: u8, cohort_seed: u64) -> Self {
        // Derive a per-user stream; the multiplier decorrelates ids.
        let mut rng = StdRng::seed_from_u64(
            cohort_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(id).wrapping_mul(0x2545_F491_4F6C_DD1D)),
        );
        UserProfile {
            id,
            gait_freq_hz: rng.gen_range(1.6..2.4),
            gait_amplitude: rng.gen_range(0.25..0.55),
            jump_freq_hz: rng.gen_range(0.9..1.5),
            jump_amplitude: rng.gen_range(1.4..2.4),
            posture_tremor_g: rng.gen_range(0.010..0.035),
            accel_noise_g: rng.gen_range(0.010..0.030),
            stretch_gain: rng.gen_range(0.85..1.15),
            stretch_offset: rng.gen_range(-0.05..0.05),
            mount_tilt_rad: rng.gen_range(-0.30..0.30),
            mount_yaw_rad: rng.gen_range(-0.55..0.55),
        }
    }

    /// Generates a whole cohort of `n` participants.
    #[must_use]
    pub fn cohort(n: usize, cohort_seed: u64) -> Vec<UserProfile> {
        (0..n)
            .map(|id| UserProfile::generate(id as u8, cohort_seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(UserProfile::generate(3, 42), UserProfile::generate(3, 42));
    }

    #[test]
    fn different_users_differ() {
        let a = UserProfile::generate(0, 42);
        let b = UserProfile::generate(1, 42);
        assert_ne!(a, b);
        assert_ne!(a.gait_freq_hz, b.gait_freq_hz);
    }

    #[test]
    fn different_seeds_differ() {
        let a = UserProfile::generate(0, 1);
        let b = UserProfile::generate(0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn parameters_stay_in_physiological_ranges() {
        for p in UserProfile::cohort(64, 9) {
            assert!((1.6..2.4).contains(&p.gait_freq_hz));
            assert!((0.25..0.55).contains(&p.gait_amplitude));
            assert!((0.9..1.5).contains(&p.jump_freq_hz));
            assert!((1.4..2.4).contains(&p.jump_amplitude));
            assert!(p.posture_tremor_g > 0.0 && p.posture_tremor_g < 0.05);
            assert!(p.accel_noise_g > 0.0 && p.accel_noise_g < 0.05);
            assert!((0.85..1.15).contains(&p.stretch_gain));
            assert!(p.stretch_offset.abs() <= 0.05);
            assert!(p.mount_tilt_rad.abs() <= 0.30);
            assert!(p.mount_yaw_rad.abs() <= 0.55);
        }
    }

    #[test]
    fn cohort_assigns_sequential_ids() {
        let cohort = UserProfile::cohort(14, 42);
        assert_eq!(cohort.len(), 14);
        for (i, p) in cohort.iter().enumerate() {
            assert_eq!(p.id as usize, i);
        }
    }
}
