//! Stretch-sensor waveform models.
//!
//! The paper pairs the accelerometer with a *passive stretch sensor* (worn
//! across the knee), read through an ADC. Knee flexion maps to a normalized
//! reading in `[0, 1]`:
//!
//! * bent knee (sit, drive) — high baseline,
//! * straight knee (stand, lie down) — low baseline,
//! * walk — periodic flexion at the gait cadence,
//! * jump — large flexion bursts at the jump rate.
//!
//! Crucially, the *baseline pairs* (sit ≈ drive, stand ≈ lie down) overlap
//! across users once mounting gain/offset variation is applied. This is the
//! mechanism that caps the stretch-only design point (DP5) at the paper's
//! ~76% accuracy while the richer design points recover the difference from
//! the accelerometer.

use rand::Rng;

use crate::noise::normal;
use crate::window::{SAMPLE_RATE_HZ, WINDOW_SAMPLES};
use crate::{Activity, UserProfile};

/// ADC resolution of the stretch channel (12-bit, like the CC2650's ADC).
const ADC_LEVELS: f64 = 4095.0;

/// Measurement noise of the stretch channel before quantization.
const STRETCH_NOISE: f64 = 0.012;

/// Baseline (DC) reading for a static posture.
fn posture_baseline(activity: Activity) -> f64 {
    match activity {
        Activity::Sit => 0.67,
        Activity::Drive => 0.65,
        Activity::Stand => 0.22,
        Activity::LieDown => 0.27,
        Activity::Walk => 0.45,
        Activity::Jump => 0.38,
        Activity::Transition => unreachable!("transitions are composed in window.rs"),
    }
}

/// Quantizes a normalized reading to the ADC grid, clamped to `[0, 1]`.
fn quantize(x: f64) -> f64 {
    (x.clamp(0.0, 1.0) * ADC_LEVELS).round() / ADC_LEVELS
}

/// Synthesizes a stretch-sensor window for a **non-transition** activity.
///
/// # Panics
///
/// Panics (in debug builds) if called with [`Activity::Transition`].
pub(crate) fn stretch_window<R: Rng + ?Sized>(
    profile: &UserProfile,
    activity: Activity,
    rng: &mut R,
) -> Vec<f64> {
    debug_assert_ne!(activity, Activity::Transition);
    let tau = 2.0 * std::f64::consts::PI;
    let phase: f64 = rng.gen_range(0.0..tau);
    // Small per-window drift in how the garment sits.
    let session_drift: f64 = rng.gen_range(-0.02..0.02);
    let baseline = posture_baseline(activity) + session_drift;
    let vib_freq: f64 = rng.gen_range(9.0..16.0);
    let vib_phase: f64 = rng.gen_range(0.0..tau);

    let mut out = Vec::with_capacity(WINDOW_SAMPLES);
    for n in 0..WINDOW_SAMPLES {
        let t = n as f64 / SAMPLE_RATE_HZ;
        let mut x = baseline;
        match activity {
            Activity::Walk => {
                // Knee flexion cycle: asymmetric (flexion faster than
                // extension), so include a small second harmonic.
                x += 0.20 * (tau * profile.gait_freq_hz * t + phase).sin()
                    + 0.06 * (2.0 * tau * profile.gait_freq_hz * t + phase).sin();
            }
            Activity::Jump => {
                let s = (tau * profile.jump_freq_hz * t + phase).sin().max(0.0);
                x += 0.30 * s.powi(4);
            }
            Activity::Drive => {
                // A faint vibration ripple transmits through the seat.
                x += 0.008 * (tau * vib_freq * t + vib_phase).sin();
            }
            _ => {}
        }
        let reading = profile.stretch_gain * x + profile.stretch_offset;
        out.push(quantize(normal(rng, reading, STRETCH_NOISE)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> UserProfile {
        UserProfile::generate(0, 42)
    }

    fn mean(x: &[f64]) -> f64 {
        x.iter().sum::<f64>() / x.len() as f64
    }

    fn std_dev(x: &[f64]) -> f64 {
        let m = mean(x);
        (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn readings_are_normalized_and_quantized() {
        let mut rng = StdRng::seed_from_u64(0);
        for activity in [Activity::Sit, Activity::Walk, Activity::Jump] {
            let w = stretch_window(&profile(), activity, &mut rng);
            assert_eq!(w.len(), WINDOW_SAMPLES);
            for &v in &w {
                assert!((0.0..=1.0).contains(&v));
                let grid = v * ADC_LEVELS;
                assert!((grid - grid.round()).abs() < 1e-9, "not on ADC grid: {v}");
            }
        }
    }

    #[test]
    fn bent_knee_reads_higher_than_straight() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = profile();
        let sit = stretch_window(&p, Activity::Sit, &mut rng);
        let stand = stretch_window(&p, Activity::Stand, &mut rng);
        assert!(mean(&sit) > mean(&stand) + 0.2);
    }

    #[test]
    fn confusable_pairs_are_close() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = profile();
        let sit = stretch_window(&p, Activity::Sit, &mut rng);
        let drive = stretch_window(&p, Activity::Drive, &mut rng);
        let stand = stretch_window(&p, Activity::Stand, &mut rng);
        let lie = stretch_window(&p, Activity::LieDown, &mut rng);
        assert!((mean(&sit) - mean(&drive)).abs() < 0.12);
        assert!((mean(&stand) - mean(&lie)).abs() < 0.12);
    }

    #[test]
    fn walking_oscillates() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = profile();
        let walk = stretch_window(&p, Activity::Walk, &mut rng);
        let sit = stretch_window(&p, Activity::Sit, &mut rng);
        assert!(std_dev(&walk) > 4.0 * std_dev(&sit));
    }

    #[test]
    fn jump_bursts_are_large() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = profile();
        let jump = stretch_window(&p, Activity::Jump, &mut rng);
        let peak = jump.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak > mean(&jump) + 0.1);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let p = profile();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            stretch_window(&p, Activity::Walk, &mut a),
            stretch_window(&p, Activity::Walk, &mut b)
        );
    }
}
