//! Internal randomness helpers.
//!
//! `rand` 0.8 ships only uniform distributions; the waveform models need
//! Gaussian noise, so we implement the Box-Muller transform here rather
//! than pulling in `rand_distr`.

use rand::Rng;

/// One standard-normal draw via the Box-Muller transform.
pub(crate) fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A normal draw with explicit mean and standard deviation.
pub(crate) fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * gauss(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gauss_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(gauss(&mut a), gauss(&mut b));
        }
    }
}
