//! Dataset assembly and the train/validation/test protocol.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::{Activity, ActivityWindow, UserProfile};

/// Number of study participants in the paper.
pub(crate) const PAPER_USERS: usize = 14;

/// Number of labeled activity windows in the paper.
pub(crate) const PAPER_WINDOWS: usize = 3553;

/// Fraction of windows whose label is corrupted to a random other class,
/// modeling the annotation errors of manually labeled boundary windows in
/// a real user study. This is part of why measured accuracies saturate in
/// the low-to-mid 90s (as in the paper's Table 2) rather than at 100%.
const LABEL_NOISE: f64 = 0.04;

/// Daily-life activity mix used to apportion windows across labels. The
/// paper does not publish its per-class counts; this mix keeps every class
/// well-represented while reflecting that postures dominate wall-clock time.
const CLASS_WEIGHTS: [(Activity, f64); 7] = [
    (Activity::Sit, 0.24),
    (Activity::Stand, 0.15),
    (Activity::Walk, 0.19),
    (Activity::Jump, 0.07),
    (Activity::Drive, 0.14),
    (Activity::LieDown, 0.14),
    (Activity::Transition, 0.07),
];

/// A collection of labeled activity windows from a user cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    windows: Vec<ActivityWindow>,
    num_users: usize,
}

/// A stratified train/validation/test partition of a [`Dataset`]
/// (60%/20%/20%, the paper's protocol). Holds indices into the original
/// dataset plus convenience slices of borrowed windows.
#[derive(Debug, Clone)]
pub struct Split<'a> {
    /// Training windows (60%).
    pub train: Vec<&'a ActivityWindow>,
    /// Validation windows (20%).
    pub validation: Vec<&'a ActivityWindow>,
    /// Test windows (20%).
    pub test: Vec<&'a ActivityWindow>,
}

impl Dataset {
    /// Generates the full synthetic user study: 14 users, 3553 windows,
    /// deterministically from `seed`.
    ///
    /// This mirrors the data volume of the paper's Sec. 4.2 ("experiments
    /// with 14 different users... a total of 3553 activity windows").
    #[must_use]
    pub fn user_study(seed: u64) -> Dataset {
        Dataset::generate(PAPER_USERS, PAPER_WINDOWS, seed)
    }

    /// Generates `total_windows` windows across `num_users` participants.
    ///
    /// Windows are apportioned to users as evenly as possible and to
    /// classes by the daily-life mix, using largest-remainder rounding so
    /// the total is exact.
    ///
    /// # Panics
    ///
    /// Panics if `num_users == 0` or `total_windows < num_users`.
    #[must_use]
    pub fn generate(num_users: usize, total_windows: usize, seed: u64) -> Dataset {
        assert!(num_users > 0, "need at least one user");
        assert!(
            total_windows >= num_users,
            "need at least one window per user"
        );
        let profiles = UserProfile::cohort(num_users, seed);
        let mut windows = Vec::with_capacity(total_windows);

        // Apportion windows across users: first `extra` users get one more.
        let base = total_windows / num_users;
        let extra = total_windows % num_users;
        for (u, profile) in profiles.iter().enumerate() {
            let count = base + usize::from(u < extra);
            let counts = apportion_classes(count);
            let mut rng = StdRng::seed_from_u64(
                seed.wrapping_mul(0xD134_2543_DE82_EF95)
                    .wrapping_add(u as u64 + 1),
            );
            for (activity, n) in counts {
                for _ in 0..n {
                    windows.push(ActivityWindow::synthesize(profile, activity, &mut rng));
                }
            }
        }
        debug_assert_eq!(windows.len(), total_windows);

        // Annotation noise: a few percent of windows carry a wrong label.
        let mut label_rng = StdRng::seed_from_u64(seed.wrapping_add(0x001A_B1ED));
        for w in &mut windows {
            if label_rng.gen::<f64>() < LABEL_NOISE {
                let offset = label_rng.gen_range(1..Activity::COUNT);
                let wrong = (w.label.index() + offset) % Activity::COUNT;
                w.label = Activity::from_index(wrong).expect("index in range");
            }
        }

        Dataset { windows, num_users }
    }

    /// All windows, in generation order (grouped by user, then class).
    #[must_use]
    pub fn windows(&self) -> &[ActivityWindow] {
        &self.windows
    }

    /// Number of windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` when the dataset holds no windows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of participants.
    #[must_use]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Windows per class, indexed by [`Activity::index`].
    #[must_use]
    pub fn class_counts(&self) -> [usize; Activity::COUNT] {
        let mut counts = [0usize; Activity::COUNT];
        for w in &self.windows {
            counts[w.label.index()] += 1;
        }
        counts
    }

    /// Stratified 60/20/20 split (by class label), shuffled with `seed`.
    ///
    /// Every class contributes proportionally to each partition, so even
    /// the rarest class appears in training, validation, and test sets.
    #[must_use]
    pub fn split(&self, seed: u64) -> Split<'_> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut validation = Vec::new();
        let mut test = Vec::new();
        for activity in Activity::ALL {
            let mut idx: Vec<usize> = self
                .windows
                .iter()
                .enumerate()
                .filter(|(_, w)| w.label == activity)
                .map(|(i, _)| i)
                .collect();
            idx.shuffle(&mut rng);
            let n = idx.len();
            let n_train = (n as f64 * 0.6).round() as usize;
            let n_val = (n as f64 * 0.2).round() as usize;
            for (pos, &i) in idx.iter().enumerate() {
                if pos < n_train {
                    train.push(&self.windows[i]);
                } else if pos < n_train + n_val {
                    validation.push(&self.windows[i]);
                } else {
                    test.push(&self.windows[i]);
                }
            }
        }
        Split {
            train,
            validation,
            test,
        }
    }
}

/// Splits `count` windows across classes by [`CLASS_WEIGHTS`] using
/// largest-remainder rounding; the returned counts sum to `count` exactly.
fn apportion_classes(count: usize) -> Vec<(Activity, usize)> {
    let mut floor_sum = 0usize;
    let mut parts: Vec<(Activity, usize, f64)> = CLASS_WEIGHTS
        .iter()
        .map(|&(a, w)| {
            let exact = w * count as f64;
            let floor = exact.floor() as usize;
            floor_sum += floor;
            (a, floor, exact - exact.floor())
        })
        .collect();
    let mut remaining = count - floor_sum;
    // Hand the leftovers to the largest fractional remainders.
    parts.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite remainders"));
    for part in parts.iter_mut() {
        if remaining == 0 {
            break;
        }
        part.1 += 1;
        remaining -= 1;
    }
    parts.sort_by_key(|(a, _, _)| a.index());
    parts.into_iter().map(|(a, n, _)| (a, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_sums_exactly() {
        for count in [1usize, 7, 100, 253, 254, 3553] {
            let parts = apportion_classes(count);
            let total: usize = parts.iter().map(|(_, n)| n).sum();
            assert_eq!(total, count, "count {count}");
        }
    }

    #[test]
    fn apportion_respects_weights_roughly() {
        let parts = apportion_classes(1000);
        for ((a, n), (wa, w)) in parts.iter().zip(CLASS_WEIGHTS.iter()) {
            assert_eq!(a, wa);
            assert!(((*n as f64) - w * 1000.0).abs() <= 1.0);
        }
    }

    #[test]
    fn small_generation_has_exact_counts() {
        let d = Dataset::generate(3, 100, 11);
        assert_eq!(d.len(), 100);
        assert_eq!(d.num_users(), 3);
        let counts = d.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // Every class is present.
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "class {i} empty");
        }
    }

    #[test]
    fn user_study_matches_paper_volume() {
        let d = Dataset::user_study(42);
        assert_eq!(d.len(), 3553);
        assert_eq!(d.num_users(), 14);
        let mut users: Vec<u8> = d.windows().iter().map(|w| w.user_id).collect();
        users.sort_unstable();
        users.dedup();
        assert_eq!(users.len(), 14);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(2, 40, 5);
        let b = Dataset::generate(2, 40, 5);
        assert_eq!(a, b);
        let c = Dataset::generate(2, 40, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn split_is_stratified_and_complete() {
        let d = Dataset::generate(4, 400, 3);
        let s = d.split(1);
        assert_eq!(s.train.len() + s.validation.len() + s.test.len(), 400);
        // Roughly 60/20/20.
        assert!((s.train.len() as f64 - 240.0).abs() <= 7.0);
        assert!((s.validation.len() as f64 - 80.0).abs() <= 7.0);
        // Every class appears in every partition.
        for part in [&s.train, &s.validation, &s.test] {
            let mut seen = [false; Activity::COUNT];
            for w in part {
                seen[w.label.index()] = true;
            }
            assert!(seen.iter().all(|&b| b), "class missing in a partition");
        }
    }

    #[test]
    fn split_partitions_are_disjoint() {
        let d = Dataset::generate(2, 100, 3);
        let s = d.split(1);
        let ptr = |w: &&ActivityWindow| *w as *const ActivityWindow as usize;
        let mut all: Vec<usize> = s
            .train
            .iter()
            .map(ptr)
            .chain(s.validation.iter().map(ptr))
            .chain(s.test.iter().map(ptr))
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "partitions overlap");
    }

    #[test]
    fn split_seed_changes_assignment() {
        let d = Dataset::generate(2, 100, 3);
        let s1 = d.split(1);
        let s2 = d.split(2);
        let ids = |v: &Vec<&ActivityWindow>| -> Vec<usize> {
            v.iter()
                .map(|w| *w as *const ActivityWindow as usize)
                .collect()
        };
        assert_ne!(ids(&s1.train), ids(&s2.train));
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        let _ = Dataset::generate(0, 10, 1);
    }
}
