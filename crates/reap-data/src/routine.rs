//! Hour-granularity daily activity routines.
//!
//! The window-level label streams used by the classifier-in-the-loop
//! simulation resolve 1.6 s at a time — far finer than the energy
//! subsystem needs. Motion- and body-coupled energy harvesters (kinetic,
//! thermoelectric) integrate over whole hours, so this module provides the
//! hour-level counterpart: a seeded [`DailyRoutine`] that says, for every
//! hour of every day, what *mix* of activities the wearer performed.
//!
//! The routine follows a diurnal template (sleep at night, commute
//! mornings and evenings, desk work or errands during the day) with
//! per-persona variation (car vs. foot commuter, exerciser or not,
//! overall activity level) and per-hour seeded jitter, so a cohort of
//! seeds produces a realistic spread of lifestyles while every seed stays
//! perfectly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Activity;

/// The fraction of an hour spent in each activity.
///
/// Fractions are non-negative and sum to 1. The mix is the bridge between
/// the activity domain and the energy domain: its weighted
/// [`motion_intensity`](ActivityMix::motion_intensity) drives kinetic
/// harvest models and its weighted
/// [`metabolic_rate_met`](ActivityMix::metabolic_rate_met) drives
/// thermoelectric ones.
///
/// # Examples
///
/// ```
/// use reap_data::{Activity, ActivityMix};
///
/// let mut weights = [0.0; Activity::COUNT];
/// weights[Activity::Walk.index()] = 3.0;
/// weights[Activity::Sit.index()] = 1.0;
/// let mix = ActivityMix::from_weights(weights);
/// assert!((mix.fraction(Activity::Walk) - 0.75).abs() < 1e-12);
/// assert_eq!(mix.dominant(), Activity::Walk);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityMix {
    fractions: [f64; Activity::COUNT],
}

impl ActivityMix {
    /// Normalizes non-negative weights into a mix.
    ///
    /// # Panics
    ///
    /// Panics when a weight is negative or non-finite, or when all weights
    /// are zero.
    #[must_use]
    pub fn from_weights(weights: [f64; Activity::COUNT]) -> ActivityMix {
        let mut sum = 0.0;
        for w in &weights {
            assert!(w.is_finite() && *w >= 0.0, "invalid activity weight {w}");
            sum += w;
        }
        assert!(sum > 0.0, "all activity weights are zero");
        ActivityMix {
            fractions: weights.map(|w| w / sum),
        }
    }

    /// A mix spending the whole hour in one activity.
    #[must_use]
    pub fn pure(activity: Activity) -> ActivityMix {
        let mut weights = [0.0; Activity::COUNT];
        weights[activity.index()] = 1.0;
        ActivityMix { fractions: weights }
    }

    /// Fraction of the hour spent in `activity`, in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self, activity: Activity) -> f64 {
        self.fractions[activity.index()]
    }

    /// All fractions, indexed by [`Activity::index`].
    #[must_use]
    pub fn fractions(&self) -> &[f64; Activity::COUNT] {
        &self.fractions
    }

    /// The activity with the largest fraction (ties break toward the
    /// lower [`Activity::index`]).
    #[must_use]
    pub fn dominant(&self) -> Activity {
        let mut best = Activity::ALL[0];
        for a in Activity::ALL {
            if self.fraction(a) > self.fraction(best) {
                best = a;
            }
        }
        best
    }

    /// Mix-weighted mean RMS dynamic acceleration, in g (see
    /// [`Activity::motion_intensity`]).
    #[must_use]
    pub fn motion_intensity(&self) -> f64 {
        Activity::ALL
            .iter()
            .map(|&a| self.fraction(a) * a.motion_intensity())
            .sum()
    }

    /// Mix-weighted mean *square* of the RMS dynamic acceleration, in g².
    ///
    /// Resonant kinetic harvesters deliver power proportional to the
    /// square of the driving acceleration, so an hour's harvest scales
    /// with this quantity rather than with the plain mean.
    #[must_use]
    pub fn mean_square_motion_intensity(&self) -> f64 {
        Activity::ALL
            .iter()
            .map(|&a| self.fraction(a) * a.motion_intensity() * a.motion_intensity())
            .sum()
    }

    /// Mix-weighted mean metabolic rate in METs (see
    /// [`Activity::metabolic_rate_met`]).
    #[must_use]
    pub fn metabolic_rate_met(&self) -> f64 {
        Activity::ALL
            .iter()
            .map(|&a| self.fraction(a) * a.metabolic_rate_met())
            .sum()
    }
}

/// A seeded hour-granularity model of one wearer's weekly rhythm.
///
/// Days follow a five-weekday/two-weekend cycle (day 0 is a Monday by
/// convention). Any `(day, hour)` cell can be queried independently and
/// reproducibly — like the weather model in `reap-harvest`, the routine
/// derives every cell from the seed rather than from mutable iteration
/// state.
///
/// # Examples
///
/// ```
/// use reap_data::{Activity, DailyRoutine};
///
/// let routine = DailyRoutine::new(7);
/// // 3 am is for sleeping…
/// assert_eq!(routine.hourly_mix(0, 3).dominant(), Activity::LieDown);
/// // …and a weekday mid-morning is mostly desk work for an office persona.
/// assert!(routine.hourly_mix(0, 10).fraction(Activity::LieDown) < 0.2);
/// // The same cell always reproduces.
/// assert_eq!(routine.hourly_mix(4, 10), DailyRoutine::new(7).hourly_mix(4, 10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DailyRoutine {
    seed: u64,
    /// Scales the time spent walking (0.6 = sedentary, 1.5 = restless).
    activity_scale: f64,
    /// Commutes by car (otherwise on foot).
    drives: bool,
    /// Fits a high-motion exercise block into weekday evenings.
    exercises: bool,
}

impl DailyRoutine {
    /// Creates the routine of the wearer identified by `seed`.
    ///
    /// The persona parameters (activity level, car vs. foot commute,
    /// evening exercise) are drawn deterministically from the seed, so a
    /// cohort of consecutive seeds yields a diverse but reproducible
    /// population.
    #[must_use]
    pub fn new(seed: u64) -> DailyRoutine {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));
        DailyRoutine {
            seed,
            activity_scale: rng.gen_range(0.6..1.5),
            drives: rng.gen_bool(0.65),
            exercises: rng.gen_bool(0.40),
        }
    }

    /// `true` when `day_index` (0-based, day 0 = Monday) is a weekday.
    #[must_use]
    pub fn is_weekday(day_index: u32) -> bool {
        day_index % 7 < 5
    }

    /// The activity mix of hour `hour` (0-23) of day `day_index`
    /// (0-based).
    ///
    /// # Panics
    ///
    /// Panics when `hour >= 24`.
    #[must_use]
    pub fn hourly_mix(&self, day_index: u32, hour: u32) -> ActivityMix {
        assert!(hour < 24, "hour {hour} out of range");
        let mut w = [0.0; Activity::COUNT];
        let set = |a: Activity, v: f64, w: &mut [f64; Activity::COUNT]| w[a.index()] = v;
        let walk_scale = self.activity_scale;

        if Self::is_weekday(day_index) {
            match hour {
                0..=5 => {
                    set(Activity::LieDown, 0.95, &mut w);
                    set(Activity::Sit, 0.03, &mut w);
                    set(Activity::Transition, 0.02, &mut w);
                }
                6 => {
                    set(Activity::LieDown, 0.30, &mut w);
                    set(Activity::Sit, 0.25, &mut w);
                    set(Activity::Stand, 0.20, &mut w);
                    set(Activity::Walk, 0.15 * walk_scale, &mut w);
                    set(Activity::Transition, 0.10, &mut w);
                }
                7..=8 | 17..=18 => {
                    // Commute blocks.
                    let (drive, walk) = if self.drives {
                        (0.45, 0.20 * walk_scale)
                    } else {
                        (0.05, 0.55 * walk_scale)
                    };
                    set(Activity::Drive, drive, &mut w);
                    set(Activity::Walk, walk, &mut w);
                    set(Activity::Sit, 0.15, &mut w);
                    set(Activity::Stand, 0.10, &mut w);
                    set(Activity::Transition, 0.05, &mut w);
                }
                9..=11 | 13..=16 => {
                    // Desk work.
                    set(Activity::Sit, 0.62, &mut w);
                    set(Activity::Stand, 0.18, &mut w);
                    set(Activity::Walk, 0.12 * walk_scale, &mut w);
                    set(Activity::Drive, 0.03, &mut w);
                    set(Activity::Transition, 0.05, &mut w);
                }
                12 => {
                    // Lunch walk.
                    set(Activity::Sit, 0.45, &mut w);
                    set(Activity::Walk, 0.30 * walk_scale, &mut w);
                    set(Activity::Stand, 0.15, &mut w);
                    set(Activity::Transition, 0.10, &mut w);
                }
                19..=20 => {
                    let jump = if self.exercises { 0.15 } else { 0.01 };
                    set(Activity::Sit, 0.40, &mut w);
                    set(Activity::Stand, 0.15, &mut w);
                    set(Activity::Walk, 0.20 * walk_scale, &mut w);
                    set(Activity::Jump, jump, &mut w);
                    set(Activity::LieDown, 0.10, &mut w);
                    set(Activity::Transition, 0.05, &mut w);
                }
                21 => {
                    set(Activity::Sit, 0.40, &mut w);
                    set(Activity::LieDown, 0.40, &mut w);
                    set(Activity::Stand, 0.10, &mut w);
                    set(Activity::Walk, 0.05 * walk_scale, &mut w);
                    set(Activity::Transition, 0.05, &mut w);
                }
                _ => {
                    set(Activity::LieDown, 0.90, &mut w);
                    set(Activity::Sit, 0.07, &mut w);
                    set(Activity::Transition, 0.03, &mut w);
                }
            }
        } else {
            match hour {
                0..=7 => {
                    set(Activity::LieDown, 0.94, &mut w);
                    set(Activity::Sit, 0.04, &mut w);
                    set(Activity::Transition, 0.02, &mut w);
                }
                8..=9 => {
                    set(Activity::Sit, 0.35, &mut w);
                    set(Activity::Stand, 0.20, &mut w);
                    set(Activity::LieDown, 0.20, &mut w);
                    set(Activity::Walk, 0.15 * walk_scale, &mut w);
                    set(Activity::Transition, 0.10, &mut w);
                }
                10..=13 => {
                    // Errands and outings.
                    set(Activity::Walk, 0.30 * walk_scale, &mut w);
                    set(
                        Activity::Drive,
                        if self.drives { 0.25 } else { 0.05 },
                        &mut w,
                    );
                    set(Activity::Stand, 0.20, &mut w);
                    set(Activity::Sit, 0.20, &mut w);
                    set(Activity::Transition, 0.05, &mut w);
                }
                14..=17 => {
                    let jump = if self.exercises { 0.08 } else { 0.01 };
                    set(Activity::Sit, 0.35, &mut w);
                    set(Activity::Walk, 0.20 * walk_scale, &mut w);
                    set(Activity::Stand, 0.15, &mut w);
                    set(Activity::LieDown, 0.15, &mut w);
                    set(Activity::Jump, jump, &mut w);
                    set(Activity::Transition, 0.05, &mut w);
                }
                18..=21 => {
                    set(Activity::Sit, 0.55, &mut w);
                    set(Activity::Stand, 0.12, &mut w);
                    set(Activity::Walk, 0.08 * walk_scale, &mut w);
                    set(Activity::LieDown, 0.20, &mut w);
                    set(Activity::Transition, 0.05, &mut w);
                }
                _ => {
                    set(Activity::LieDown, 0.92, &mut w);
                    set(Activity::Sit, 0.05, &mut w);
                    set(Activity::Transition, 0.03, &mut w);
                }
            }
        }

        // Per-cell jitter: nobody's Tuesday 10 am is identical to their
        // Wednesday's. Derived from (seed, day, hour) so cells stay
        // independently queryable.
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xE703_7ED1_A0B4_28DB)
                .wrapping_add(u64::from(day_index) << 8)
                .wrapping_add(u64::from(hour)),
        );
        for weight in &mut w {
            if *weight > 0.0 {
                *weight *= rng.gen_range(0.75..1.25);
            }
        }
        ActivityMix::from_weights(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_normalizes_and_exposes_fractions() {
        let mut weights = [0.0; Activity::COUNT];
        weights[Activity::Sit.index()] = 2.0;
        weights[Activity::Walk.index()] = 2.0;
        let mix = ActivityMix::from_weights(weights);
        assert!((mix.fraction(Activity::Sit) - 0.5).abs() < 1e-12);
        assert!((mix.fractions().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Dominant tie breaks toward the lower index (Sit < Walk).
        assert_eq!(mix.dominant(), Activity::Sit);
    }

    #[test]
    #[should_panic(expected = "invalid activity weight")]
    fn negative_weight_panics() {
        let mut weights = [0.0; Activity::COUNT];
        weights[0] = -1.0;
        let _ = ActivityMix::from_weights(weights);
    }

    #[test]
    #[should_panic(expected = "all activity weights are zero")]
    fn zero_weights_panic() {
        let _ = ActivityMix::from_weights([0.0; Activity::COUNT]);
    }

    #[test]
    fn pure_mix_is_a_delta() {
        let mix = ActivityMix::pure(Activity::Jump);
        assert_eq!(mix.fraction(Activity::Jump), 1.0);
        assert_eq!(mix.dominant(), Activity::Jump);
        assert!((mix.motion_intensity() - Activity::Jump.motion_intensity()).abs() < 1e-12);
        assert!((mix.metabolic_rate_met() - Activity::Jump.metabolic_rate_met()).abs() < 1e-12);
    }

    #[test]
    fn mean_square_exceeds_square_of_mean_for_mixtures() {
        let mut weights = [0.0; Activity::COUNT];
        weights[Activity::Jump.index()] = 0.5;
        weights[Activity::Sit.index()] = 0.5;
        let mix = ActivityMix::from_weights(weights);
        let mean = mix.motion_intensity();
        assert!(mix.mean_square_motion_intensity() > mean * mean);
    }

    #[test]
    fn routine_is_deterministic_per_seed_and_varies_across_seeds() {
        let a = DailyRoutine::new(5);
        let b = DailyRoutine::new(5);
        for day in 0..14 {
            for hour in 0..24 {
                assert_eq!(a.hourly_mix(day, hour), b.hourly_mix(day, hour));
            }
        }
        let c = DailyRoutine::new(6);
        let differs = (0..24).any(|h| a.hourly_mix(0, h) != c.hourly_mix(0, h));
        assert!(differs, "seeds 5 and 6 produced identical day 0");
    }

    #[test]
    fn nights_are_for_sleeping() {
        for seed in 0..20 {
            let r = DailyRoutine::new(seed);
            for day in 0..7 {
                for hour in [0, 2, 4] {
                    let mix = r.hourly_mix(day, hour);
                    assert_eq!(mix.dominant(), Activity::LieDown, "seed {seed}");
                    assert!(mix.fraction(Activity::LieDown) > 0.8);
                }
            }
        }
    }

    #[test]
    fn days_are_more_dynamic_than_nights() {
        for seed in 0..20 {
            let r = DailyRoutine::new(seed);
            let night = r.hourly_mix(0, 3).motion_intensity();
            let noon = r.hourly_mix(0, 12).motion_intensity();
            assert!(noon > 3.0 * night, "seed {seed}: noon {noon} night {night}");
        }
    }

    #[test]
    fn weekday_cycle() {
        assert!(DailyRoutine::is_weekday(0));
        assert!(DailyRoutine::is_weekday(4));
        assert!(!DailyRoutine::is_weekday(5));
        assert!(!DailyRoutine::is_weekday(6));
        assert!(DailyRoutine::is_weekday(7));
    }

    #[test]
    fn commuters_drive_more_than_walkers() {
        // Find one driving and one walking persona; compare commute mixes.
        let seeds: Vec<u64> = (0..64).collect();
        let driver = seeds.iter().find(|&&s| DailyRoutine::new(s).drives);
        let walker = seeds.iter().find(|&&s| !DailyRoutine::new(s).drives);
        let (driver, walker) = (driver.expect("some driver"), walker.expect("some walker"));
        let d = DailyRoutine::new(*driver).hourly_mix(0, 8);
        let w = DailyRoutine::new(*walker).hourly_mix(0, 8);
        assert!(d.fraction(Activity::Drive) > w.fraction(Activity::Drive));
        assert!(w.fraction(Activity::Walk) > d.fraction(Activity::Walk));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_hour_panics() {
        let _ = DailyRoutine::new(0).hourly_mix(0, 24);
    }
}
