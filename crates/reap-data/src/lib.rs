//! Synthetic user-study data for human activity recognition.
//!
//! The REAP paper evaluates its design points on 3553 labeled activity
//! windows collected from 14 users wearing a TI-Sensortag prototype with a
//! 3-axis accelerometer and a passive stretch sensor. That dataset was
//! never released, so this crate generates a **synthetic substitute**: a
//! deterministic, seeded cohort of 14 parameterized user profiles whose
//! biomechanical waveform models produce accelerometer and stretch-sensor
//! windows with the same shape (1.6 s at 100 Hz), label set (six activities
//! plus transitions), and cohort-level statistics.
//!
//! The generator is engineered so the *relative* classification difficulty
//! matches the paper's findings: the stretch sensor alone cannot reliably
//! separate sitting from driving or standing from lying down (which is why
//! the stretch-only design point DP5 drops to ~76% accuracy), while adding
//! accelerometer axes and longer sensing windows recovers the difference.
//!
//! # Examples
//!
//! ```
//! use reap_data::{Activity, Dataset};
//!
//! let dataset = Dataset::user_study(42);
//! assert_eq!(dataset.len(), 3553);
//! assert_eq!(dataset.num_users(), 14);
//!
//! let split = dataset.split(7);
//! // The paper's 60/20/20 train/validation/test protocol.
//! assert!(split.train.len() > split.validation.len());
//! assert!(split.train.len() > split.test.len());
//! # let _ = Activity::Walk;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod dataset;
pub mod diagnostics;
mod noise;
mod routine;
mod stretch;
mod user;
mod waveform;
mod window;

pub use activity::Activity;
pub use dataset::{Dataset, Split};
pub use routine::{ActivityMix, DailyRoutine};
pub use user::UserProfile;
pub use window::{ActivityWindow, SAMPLE_RATE_HZ, WINDOW_SAMPLES, WINDOW_SECONDS};
