//! Accelerometer waveform models.
//!
//! Each activity produces a characteristic 3-axis acceleration pattern (in
//! units of g) on a chest/thigh-worn device:
//!
//! * **static postures** — a gravity orientation vector plus postural
//!   tremor (sit and stand differ by torso pitch; lying down rotates
//!   gravity onto the x axis; driving adds vehicle vibration),
//! * **walk** — periodic gait oscillation at the user's cadence with a
//!   second-harmonic heel-strike component,
//! * **jump** — an impulse train of take-off spikes and flight-phase dips.
//!
//! The axis convention is `[x, y, z]` = `[lateral, forward, vertical]` for
//! an upright wearer.

use rand::Rng;

use crate::noise::normal;
use crate::window::{SAMPLE_RATE_HZ, WINDOW_SAMPLES};
use crate::{Activity, UserProfile};

/// Gravity orientation (in g) for a static posture, before mount tilt.
fn posture_gravity(activity: Activity) -> [f64; 3] {
    match activity {
        Activity::Sit => [0.10, 0.26, 0.95],
        Activity::Stand => [0.02, 0.05, 1.00],
        Activity::Drive => [0.12, 0.28, 0.94],
        Activity::LieDown => [0.94, 0.08, 0.26],
        // Dynamic activities oscillate around standing.
        Activity::Walk | Activity::Jump => [0.02, 0.05, 1.00],
        Activity::Transition => unreachable!("transitions are composed in window.rs"),
    }
}

/// Applies the device mounting orientation: yaw (x-y plane rotation,
/// mixing the lateral and forward axes) followed by pitch tilt (y-z
/// plane). Mounting variation across users is a major reason recognition
/// accuracy "is a strong function of the users" (Sec. 1).
fn apply_mount(g: [f64; 3], yaw: f64, tilt: f64) -> [f64; 3] {
    let (sy, cy) = yaw.sin_cos();
    let yawed = [g[0] * cy - g[1] * sy, g[0] * sy + g[1] * cy, g[2]];
    let (st, ct) = tilt.sin_cos();
    [
        yawed[0],
        yawed[1] * ct - yawed[2] * st,
        yawed[1] * st + yawed[2] * ct,
    ]
}

/// Synthesizes a 3-axis accelerometer window for a **non-transition**
/// activity. Returns `[x, y, z]`, each `WINDOW_SAMPLES` long.
///
/// # Panics
///
/// Panics (in debug builds) if called with [`Activity::Transition`]; the
/// window composer handles transitions by crossfading two calls to this
/// function.
pub(crate) fn accel_window<R: Rng + ?Sized>(
    profile: &UserProfile,
    activity: Activity,
    rng: &mut R,
) -> [Vec<f64>; 3] {
    debug_assert_ne!(activity, Activity::Transition);
    // The device re-seats slightly every time it is worn: add a small
    // per-window orientation jitter on top of the user's mounting pose.
    let tilt = profile.mount_tilt_rad + rng.gen_range(-0.08..0.08);
    let yaw = profile.mount_yaw_rad + rng.gen_range(-0.08..0.08);
    let gravity = posture_gravity(activity);
    let mut out = [
        Vec::with_capacity(WINDOW_SAMPLES),
        Vec::with_capacity(WINDOW_SAMPLES),
        Vec::with_capacity(WINDOW_SAMPLES),
    ];

    let tau = 2.0 * std::f64::consts::PI;
    // Per-window random phases / vibration structure.
    let phase: f64 = rng.gen_range(0.0..tau);
    let phase2: f64 = rng.gen_range(0.0..tau);
    // Road roughness varies ride to ride; a smooth highway keeps driving
    // from being trivially separable from sitting, but engine-band
    // vibration must still dominate the per-user noise floor or the
    // accelerometer would carry no sit/drive signal at all.
    let road: f64 = rng.gen_range(0.45..1.2);
    let vib: [(f64, f64, f64); 3] = [
        (
            rng.gen_range(8.0..14.0),
            road * rng.gen_range(0.05..0.10),
            rng.gen_range(0.0..tau),
        ),
        (
            rng.gen_range(14.0..20.0),
            road * rng.gen_range(0.03..0.06),
            rng.gen_range(0.0..tau),
        ),
        (
            rng.gen_range(3.0..6.0),
            road * rng.gen_range(0.015..0.04),
            rng.gen_range(0.0..tau),
        ),
    ];

    let tremor = match activity {
        Activity::Sit | Activity::Drive => profile.posture_tremor_g,
        Activity::Stand => profile.posture_tremor_g * 1.6, // standing sway
        Activity::LieDown => profile.posture_tremor_g * 0.5,
        _ => 0.0,
    };

    for n in 0..WINDOW_SAMPLES {
        let t = n as f64 / SAMPLE_RATE_HZ;
        let mut sample = gravity;

        match activity {
            Activity::Walk => {
                let f = profile.gait_freq_hz;
                let a = profile.gait_amplitude;
                let fundamental = (tau * f * t + phase).sin();
                let heel_strike = (2.0 * tau * f * t + phase2).sin();
                sample[2] += a * fundamental + 0.45 * a * heel_strike;
                sample[1] += 0.60 * a * (tau * f * t + phase + 1.1).sin();
                sample[0] += 0.30 * a * (tau * f * t * 0.5 + phase2).sin();
            }
            Activity::Jump => {
                let f = profile.jump_freq_hz;
                let a = profile.jump_amplitude;
                // Take-off spike: a narrow positive lobe once per period.
                let s = (tau * f * t + phase).sin().max(0.0);
                let spike = s.powi(8);
                // Flight phase: near free-fall between spikes.
                let flight = (tau * f * t + phase + std::f64::consts::PI)
                    .sin()
                    .max(0.0)
                    .powi(4);
                sample[2] += a * spike - 0.85 * flight;
                sample[1] += 0.35 * a * spike;
                sample[0] += 0.15 * a * (tau * f * t + phase2).sin();
            }
            Activity::Drive => {
                // Road vibration: a few sinusoids in the 3-20 Hz band.
                for &(f, a, ph) in &vib {
                    let v = a * (tau * f * t + ph).sin();
                    sample[2] += v;
                    sample[1] += 0.5 * v;
                    sample[0] += 0.3 * v;
                }
            }
            _ => {}
        }

        // The device measures the body-frame vector rotated into the
        // device frame, plus sensor noise and postural tremor.
        let rotated = apply_mount(sample, yaw, tilt);
        for (axis, value) in rotated.iter().enumerate() {
            let noisy = normal(rng, *value, profile.accel_noise_g)
                + if tremor > 0.0 {
                    normal(rng, 0.0, tremor)
                } else {
                    0.0
                };
            out[axis].push(noisy);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> UserProfile {
        UserProfile::generate(0, 42)
    }

    fn mean(x: &[f64]) -> f64 {
        x.iter().sum::<f64>() / x.len() as f64
    }

    fn std_dev(x: &[f64]) -> f64 {
        let m = mean(x);
        (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn windows_have_the_right_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = accel_window(&profile(), Activity::Sit, &mut rng);
        for axis in &w {
            assert_eq!(axis.len(), WINDOW_SAMPLES);
            assert!(axis.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn lying_rotates_gravity_onto_x() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = profile();
        let lie = accel_window(&p, Activity::LieDown, &mut rng);
        let stand = accel_window(&p, Activity::Stand, &mut rng);
        assert!(mean(&lie[0]) > 0.7, "lie x mean = {}", mean(&lie[0]));
        assert!(mean(&stand[2]) > 0.8, "stand z mean = {}", mean(&stand[2]));
        assert!(mean(&lie[2]) < 0.5);
    }

    #[test]
    fn walking_is_much_more_dynamic_than_sitting() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = profile();
        let walk = accel_window(&p, Activity::Walk, &mut rng);
        let sit = accel_window(&p, Activity::Sit, &mut rng);
        assert!(
            std_dev(&walk[2]) > 5.0 * std_dev(&sit[2]),
            "walk z std {} vs sit z std {}",
            std_dev(&walk[2]),
            std_dev(&sit[2])
        );
    }

    #[test]
    fn jumping_has_larger_peaks_than_walking() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = profile();
        let jump = accel_window(&p, Activity::Jump, &mut rng);
        let walk = accel_window(&p, Activity::Walk, &mut rng);
        let peak = |x: &[f64]| x.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak(&jump[2]) > peak(&walk[2]) + 0.5);
    }

    #[test]
    fn driving_adds_vibration_over_sitting() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = profile();
        let drive = accel_window(&p, Activity::Drive, &mut rng);
        let sit = accel_window(&p, Activity::Sit, &mut rng);
        assert!(std_dev(&drive[2]) > 1.5 * std_dev(&sit[2]));
        // But the gravity orientation is nearly the same (that is what makes
        // them hard to separate without the accelerometer's AC content).
        assert!((mean(&drive[2]) - mean(&sit[2])).abs() < 0.1);
    }

    #[test]
    fn walking_cadence_shows_up_at_the_gait_frequency() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = profile();
        let walk = accel_window(&p, Activity::Walk, &mut rng);
        // Count mean crossings of the z-axis: about 2 * f * T.
        let z = &walk[2];
        let m = mean(z);
        let crossings = z
            .windows(2)
            .filter(|w| (w[0] - m) * (w[1] - m) < 0.0)
            .count();
        let expected = 2.0 * p.gait_freq_hz * 1.6;
        // Harmonics and noise add a few extra crossings; allow slack.
        assert!(
            (crossings as f64) > 0.7 * expected && (crossings as f64) < 3.5 * expected,
            "crossings = {crossings}, expected about {expected}"
        );
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let p = profile();
        let mut a = StdRng::seed_from_u64(6);
        let mut b = StdRng::seed_from_u64(6);
        let wa = accel_window(&p, Activity::Walk, &mut a);
        let wb = accel_window(&p, Activity::Walk, &mut b);
        assert_eq!(wa, wb);
    }
}
