//! Labeled activity windows.

use rand::Rng;

use crate::stretch::stretch_window;
use crate::waveform::accel_window;
use crate::{Activity, UserProfile};

/// Sensor sampling rate (both sensors), as in the paper's prototype.
pub const SAMPLE_RATE_HZ: f64 = 100.0;

/// Activity window length in seconds (the paper's DP1 senses "the entire
/// activity window of 1.6 s").
pub const WINDOW_SECONDS: f64 = 1.6;

/// Samples per window per channel: `100 Hz * 1.6 s`.
pub const WINDOW_SAMPLES: usize = 160;

/// One labeled 1.6-second sensor window: three accelerometer axes plus the
/// stretch channel, all sampled at 100 Hz.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityWindow {
    /// Which participant produced the window.
    pub user_id: u8,
    /// Ground-truth activity label.
    pub label: Activity,
    /// Accelerometer samples in g: `[x, y, z]`, each `WINDOW_SAMPLES` long.
    pub accel: [Vec<f64>; 3],
    /// Normalized stretch-sensor samples, `WINDOW_SAMPLES` long.
    pub stretch: Vec<f64>,
}

/// Transition endpoints used when synthesizing [`Activity::Transition`]
/// windows: the posture changes people actually perform.
const TRANSITION_PAIRS: [(Activity, Activity); 6] = [
    (Activity::Sit, Activity::Stand),
    (Activity::Stand, Activity::Sit),
    (Activity::Sit, Activity::LieDown),
    (Activity::LieDown, Activity::Sit),
    (Activity::Stand, Activity::Walk),
    (Activity::Walk, Activity::Stand),
];

impl ActivityWindow {
    /// Synthesizes one labeled window for `profile` performing `activity`.
    ///
    /// Transitions are composed by crossfading two endpoint activities with
    /// a logistic blend plus a motion burst at the changeover, mimicking
    /// the acceleration transient of postural change.
    pub fn synthesize<R: Rng + ?Sized>(
        profile: &UserProfile,
        activity: Activity,
        rng: &mut R,
    ) -> Self {
        match activity {
            Activity::Transition => {
                let (from, to) = TRANSITION_PAIRS[rng.gen_range(0..TRANSITION_PAIRS.len())];
                let accel_from = accel_window(profile, from, rng);
                let accel_to = accel_window(profile, to, rng);
                let stretch_from = stretch_window(profile, from, rng);
                let stretch_to = stretch_window(profile, to, rng);

                // Changeover instant somewhere in the middle of the window.
                let center: f64 = rng.gen_range(0.5..1.1);
                let tau = 0.08; // blend sharpness in seconds
                let weight = |t: f64| 1.0 / (1.0 + (-(t - center) / tau).exp());

                let mut accel: [Vec<f64>; 3] = [
                    Vec::with_capacity(WINDOW_SAMPLES),
                    Vec::with_capacity(WINDOW_SAMPLES),
                    Vec::with_capacity(WINDOW_SAMPLES),
                ];
                let mut stretch = Vec::with_capacity(WINDOW_SAMPLES);
                for n in 0..WINDOW_SAMPLES {
                    let t = n as f64 / SAMPLE_RATE_HZ;
                    let w = weight(t);
                    // Motion burst peaking at the changeover (w*(1-w) is
                    // maximal at w = 1/2).
                    let burst_env = 4.0 * w * (1.0 - w);
                    for axis in 0..3 {
                        let blended = (1.0 - w) * accel_from[axis][n] + w * accel_to[axis][n];
                        let burst = burst_env * 0.35 * crate::noise::gauss(rng);
                        accel[axis].push(blended + burst);
                    }
                    let s_blend = (1.0 - w) * stretch_from[n] + w * stretch_to[n];
                    let s_burst = burst_env * 0.05 * crate::noise::gauss(rng);
                    stretch.push((s_blend + s_burst).clamp(0.0, 1.0));
                }
                ActivityWindow {
                    user_id: profile.id,
                    label: Activity::Transition,
                    accel,
                    stretch,
                }
            }
            other => ActivityWindow {
                user_id: profile.id,
                label: other,
                accel: accel_window(profile, other, rng),
                stretch: stretch_window(profile, other, rng),
            },
        }
    }

    /// Number of samples per channel (always [`WINDOW_SAMPLES`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.stretch.len()
    }

    /// `true` if the window holds no samples (never, for synthesized
    /// windows; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stretch.is_empty()
    }

    /// The first `fraction` of an accelerometer axis, as used by the
    /// reduced-sensing-period design points (DP3 samples 50%, DP4 40% of
    /// the window).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1]` or `axis > 2`.
    #[must_use]
    pub fn accel_prefix(&self, axis: usize, fraction: f64) -> &[f64] {
        assert!(axis < 3, "axis {axis} out of range");
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "sensing fraction {fraction} outside (0, 1]"
        );
        let n = ((self.accel[axis].len() as f64) * fraction).round() as usize;
        &self.accel[axis][..n.max(1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> UserProfile {
        UserProfile::generate(2, 42)
    }

    #[test]
    fn synthesized_windows_have_consistent_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        for &activity in &Activity::ALL {
            let w = ActivityWindow::synthesize(&profile(), activity, &mut rng);
            assert_eq!(w.label, activity);
            assert_eq!(w.len(), WINDOW_SAMPLES);
            assert!(!w.is_empty());
            for axis in &w.accel {
                assert_eq!(axis.len(), WINDOW_SAMPLES);
            }
            assert_eq!(w.user_id, 2);
        }
    }

    #[test]
    fn transition_interpolates_between_postures() {
        // Averaged over many transitions the early part and late part must
        // differ (a transition goes somewhere); single windows may pick
        // similar endpoints.
        let mut rng = StdRng::seed_from_u64(1);
        let mut moved = 0;
        let total = 40;
        for _ in 0..total {
            let w = ActivityWindow::synthesize(&profile(), Activity::Transition, &mut rng);
            let early: f64 = w.stretch[..30].iter().sum::<f64>() / 30.0;
            let late: f64 = w.stretch[130..].iter().sum::<f64>() / 30.0;
            if (early - late).abs() > 0.08 {
                moved += 1;
            }
        }
        assert!(moved > total / 2, "only {moved}/{total} transitions moved");
    }

    #[test]
    fn accel_prefix_selects_sensing_period() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = ActivityWindow::synthesize(&profile(), Activity::Walk, &mut rng);
        assert_eq!(w.accel_prefix(0, 1.0).len(), WINDOW_SAMPLES);
        assert_eq!(w.accel_prefix(1, 0.5).len(), 80);
        assert_eq!(w.accel_prefix(2, 0.4).len(), 64);
    }

    #[test]
    #[should_panic(expected = "sensing fraction")]
    fn accel_prefix_rejects_zero_fraction() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = ActivityWindow::synthesize(&profile(), Activity::Sit, &mut rng);
        let _ = w.accel_prefix(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "axis")]
    fn accel_prefix_rejects_bad_axis() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = ActivityWindow::synthesize(&profile(), Activity::Sit, &mut rng);
        let _ = w.accel_prefix(3, 0.5);
    }
}
