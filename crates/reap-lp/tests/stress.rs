//! Stress tests for the simplex: Klee-Minty cubes (the classic
//! worst case for Dantzig's rule), badly scaled problems, and larger
//! random instances.

use reap_lp::oracle::{best_vertex, OracleResult};
use reap_lp::{LpProblem, LpStatus, Relation, SimplexOptions};

/// The Klee-Minty cube in `n` dimensions:
///
/// ```text
/// maximize  sum_j 2^(n-j) x_j
/// s.t.      2 * sum_{j<i} 2^(i-j) x_j + x_i <= 5^i      (i = 1..n)
/// ```
///
/// Dantzig's rule can visit an exponential number of vertices here; the
/// solver must still terminate and find the optimum (which the oracle
/// verifies for small `n`).
fn klee_minty(n: usize) -> LpProblem {
    let objective: Vec<f64> = (1..=n).map(|j| 2f64.powi((n - j) as i32)).collect();
    let mut p = LpProblem::maximize(&objective);
    for i in 1..=n {
        let mut row = vec![0.0; n];
        for (j, r) in row.iter_mut().enumerate().take(i - 1) {
            *r = 2.0 * 2f64.powi((i - 1 - j) as i32);
        }
        row[i - 1] = 1.0;
        p.subject_to(&row, Relation::Le, 5f64.powi(i as i32))
            .expect("consistent dims");
    }
    p
}

#[test]
fn klee_minty_small_matches_oracle() {
    for n in 2..=5 {
        let p = klee_minty(n);
        let s = p.solve().expect("terminates");
        assert_eq!(s.status(), LpStatus::Optimal, "n = {n}");
        match best_vertex(&p, 1e-7) {
            OracleResult::Optimal { objective, .. } => {
                assert!(
                    (s.objective() - objective).abs() < 1e-6 * (1.0 + objective.abs()),
                    "n = {n}: simplex {} vs oracle {objective}",
                    s.objective()
                );
            }
            OracleResult::NoVertex => panic!("oracle failed on n = {n}"),
        }
        // The known closed form: optimum value is 5^n.
        assert!(
            (s.objective() - 5f64.powi(n as i32)).abs() < 1e-6 * 5f64.powi(n as i32),
            "n = {n}: objective {}",
            s.objective()
        );
    }
}

#[test]
fn klee_minty_larger_terminates_within_budget() {
    let p = klee_minty(10);
    let s = p.solve().expect("terminates within default iteration cap");
    assert_eq!(s.status(), LpStatus::Optimal);
    assert!(
        (s.objective() - 5f64.powi(10)).abs() < 1e-4 * 5f64.powi(10),
        "objective {}",
        s.objective()
    );
}

#[test]
fn badly_scaled_problem_is_solved() {
    // Coefficients spanning 9 orders of magnitude (as in the REAP LP:
    // microwatt powers, kilosecond times).
    let mut p = LpProblem::maximize(&[1e-6, 1e3]);
    p.subject_to(&[1e-6, 1e3], Relation::Le, 2e3).unwrap();
    p.subject_to(&[1.0, 0.0], Relation::Le, 1e9).unwrap();
    let s = p.solve().expect("solves");
    assert_eq!(s.status(), LpStatus::Optimal);
    assert!((s.objective() - 2e3).abs() < 1e-3);
}

#[test]
fn hundred_variable_reap_shaped_instance() {
    // The paper's N = 100 design-point configuration.
    let n = 100;
    let tp = 3600.0;
    let mut objective: Vec<f64> = (0..n)
        .map(|i| (0.5 + 0.45 * i as f64 / n as f64) / tp)
        .collect();
    objective.push(0.0);
    let mut p = LpProblem::maximize(&objective);
    let ones = vec![1.0; n + 1];
    p.subject_to(&ones, Relation::Eq, tp).unwrap();
    let mut powers: Vec<f64> = (0..n)
        .map(|i| (1.0 + 2.0 * i as f64 / n as f64) * 1e-3)
        .collect();
    powers.push(50e-6);
    p.subject_to(&powers, Relation::Le, 5.0).unwrap();
    let s = p.solve().expect("solves");
    assert_eq!(s.status(), LpStatus::Optimal);
    assert!(p.is_feasible(s.values(), 1e-6));
    // Optimum still mixes at most two points.
    let active = s.values()[..n].iter().filter(|&&t| t > 1e-6).count();
    assert!(active <= 2, "{active} active variables");
    // And the solve stays fast (the paper's premise for running this
    // every hour on an MCU).
    assert!(s.iterations() < 500, "{} iterations", s.iterations());
}

#[test]
fn tight_iteration_budget_reports_limit_not_wrong_answer() {
    let p = klee_minty(8);
    let result = p.solve_with(&SimplexOptions {
        max_iterations: 2,
        ..SimplexOptions::default()
    });
    assert!(result.is_err(), "must refuse, not return a wrong optimum");
}
