//! Property tests: the simplex solver must agree with the brute-force
//! vertex-enumeration oracle on small random problems, and its solutions
//! must always be feasible for the original constraints.

use proptest::prelude::*;
use reap_lp::oracle::{best_vertex, OracleResult};
use reap_lp::{LpProblem, LpStatus, PivotRule, Relation, SimplexOptions};

/// Strategy: a small random maximization LP, boxed so it is always bounded.
///
/// Coefficients are drawn from a modest range and rounded to two decimals to
/// keep the vertex systems well-conditioned (ill-conditioned bases make the
/// oracle and the simplex legitimately disagree inside float noise, which is
/// not the property under test).
fn arb_boxed_lp() -> impl Strategy<Value = LpProblem> {
    let coeff = (-400i32..=400).prop_map(|c| f64::from(c) / 100.0);
    let rhs = (0i32..=500).prop_map(|c| f64::from(c) / 10.0);
    (2usize..=4, 1usize..=3).prop_flat_map(move |(n, m)| {
        let objective = proptest::collection::vec(coeff.clone(), n);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(coeff.clone(), n), rhs.clone()),
            m,
        );
        (objective, rows).prop_map(move |(obj, rows)| {
            let mut p = LpProblem::maximize(&obj);
            for (coeffs, r) in rows {
                p.subject_to(&coeffs, Relation::Le, r).expect("same dim");
            }
            // Box every variable so the problem is bounded and the oracle's
            // vertex enumeration is exhaustive.
            for i in 0..obj.len() {
                let mut bound = vec![0.0; obj.len()];
                bound[i] = 1.0;
                p.subject_to(&bound, Relation::Le, 50.0).expect("same dim");
            }
            p
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simplex_matches_oracle_on_boxed_problems(p in arb_boxed_lp()) {
        let s = p.solve().expect("solver converges");
        // Boxed problems with rhs >= 0 always contain the origin, so they
        // are feasible and bounded.
        prop_assert_eq!(s.status(), LpStatus::Optimal);
        prop_assert!(p.is_feasible(s.values(), 1e-6));
        match best_vertex(&p, 1e-7) {
            OracleResult::Optimal { objective, .. } => {
                prop_assert!(
                    (objective - s.objective()).abs() <= 1e-6 * (1.0 + objective.abs()),
                    "simplex {} vs oracle {}", s.objective(), objective
                );
            }
            OracleResult::NoVertex => prop_assert!(false, "oracle found no vertex"),
        }
    }

    #[test]
    fn dantzig_and_bland_agree(p in arb_boxed_lp()) {
        let dantzig = p.solve().expect("converges");
        let bland = p
            .solve_with(&SimplexOptions { pivot_rule: PivotRule::Bland, ..Default::default() })
            .expect("converges");
        prop_assert_eq!(dantzig.status(), LpStatus::Optimal);
        prop_assert_eq!(bland.status(), LpStatus::Optimal);
        prop_assert!(
            (dantzig.objective() - bland.objective()).abs()
                <= 1e-6 * (1.0 + dantzig.objective().abs()),
            "dantzig {} vs bland {}", dantzig.objective(), bland.objective()
        );
    }

    #[test]
    fn objective_reported_matches_point(p in arb_boxed_lp()) {
        let s = p.solve().expect("converges");
        prop_assert_eq!(s.status(), LpStatus::Optimal);
        let recomputed = p.objective_value(s.values());
        prop_assert!(
            (recomputed - s.objective()).abs() <= 1e-6 * (1.0 + recomputed.abs()),
            "tableau objective {} vs dot product {}", s.objective(), recomputed
        );
    }
}

/// REAP-shaped random instances: equality on total time plus an energy
/// budget inequality, which exercises the phase-1 (artificial variable)
/// path on every run.
fn arb_reap_like() -> impl Strategy<Value = LpProblem> {
    (2usize..=6, 0.0f64..=1.0).prop_flat_map(|(n, budget_frac)| {
        let acc = proptest::collection::vec(50.0f64..=99.0, n);
        let pow = proptest::collection::vec(0.5f64..=3.0, n);
        (acc, pow, Just(budget_frac)).prop_map(move |(acc, pow, budget_frac)| {
            let tp = 3600.0;
            let p_off = 0.05;
            let p_max = pow.iter().cloned().fold(f64::MIN, f64::max);
            // Budget between the all-off minimum and the all-max-DP cost.
            let eb = p_off * tp + budget_frac * (p_max - p_off) * tp;
            let mut obj: Vec<f64> = acc.iter().map(|a| a / tp).collect();
            obj.push(0.0);
            let mut prob = LpProblem::maximize(&obj);
            let ones = vec![1.0; n + 1];
            prob.subject_to(&ones, Relation::Eq, tp).expect("dim");
            let mut prow = pow.clone();
            prow.push(p_off);
            prob.subject_to(&prow, Relation::Le, eb).expect("dim");
            prob
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reap_shaped_lps_are_solved_optimally_and_feasibly(p in arb_reap_like()) {
        let s = p.solve().expect("converges");
        prop_assert_eq!(s.status(), LpStatus::Optimal);
        prop_assert!(p.is_feasible(s.values(), 1e-5));
        match best_vertex(&p, 1e-6) {
            OracleResult::Optimal { objective, .. } => {
                prop_assert!(
                    (objective - s.objective()).abs() <= 1e-5 * (1.0 + objective.abs()),
                    "simplex {} vs oracle {}", s.objective(), objective
                );
            }
            OracleResult::NoVertex => prop_assert!(false, "oracle found no vertex"),
        }
    }

    #[test]
    fn reap_solution_uses_at_most_two_design_points(p in arb_reap_like()) {
        // With one equality and one inequality constraint, any basic optimal
        // solution has at most two strictly positive allocations besides
        // t_off. This structural fact is what the closed-form controller in
        // reap-core relies on.
        let s = p.solve().expect("converges");
        prop_assert_eq!(s.status(), LpStatus::Optimal);
        let n = p.num_vars() - 1;
        let active = s.values()[..n].iter().filter(|&&t| t > 1e-6).count();
        prop_assert!(active <= 2, "{} active DPs (> 2)", active);
    }
}
