//! LP problem construction.

use crate::error::LpError;
use crate::simplex::{self, SimplexOptions};
use crate::solution::LpSolution;

/// The sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `coeffs · x <= rhs`
    Le,
    /// `coeffs · x == rhs`
    Eq,
    /// `coeffs · x >= rhs`
    Ge,
}

impl Relation {
    /// Returns the relation with its comparison direction flipped
    /// (`Le <-> Ge`, `Eq` unchanged). Used when a row is negated to make its
    /// right-hand side non-negative.
    #[must_use]
    pub fn flipped(self) -> Relation {
        match self {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        }
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    Maximize,
    Minimize,
}

/// One linear constraint row.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ConstraintRow {
    pub coeffs: Vec<f64>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear program over non-negative decision variables.
///
/// The problem is
///
/// ```text
/// max (or min)  c · x
/// subject to    A x {<=, =, >=} b
///               x >= 0
/// ```
///
/// Build with [`LpProblem::maximize`] or [`LpProblem::minimize`], add rows
/// with [`LpProblem::subject_to`], then call [`LpProblem::solve`].
///
/// # Examples
///
/// ```
/// use reap_lp::{LpProblem, Relation};
///
/// # fn main() -> Result<(), reap_lp::LpError> {
/// // Minimize x + y with x + y >= 2.
/// let mut p = LpProblem::minimize(&[1.0, 1.0]);
/// p.subject_to(&[1.0, 1.0], Relation::Ge, 2.0)?;
/// let s = p.solve()?;
/// assert!((s.objective() - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    pub(crate) direction: Direction,
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<ConstraintRow>,
}

impl LpProblem {
    /// Creates a maximization problem with the given objective coefficients.
    ///
    /// The number of decision variables is fixed to `objective.len()` from
    /// this point on.
    ///
    /// # Panics
    ///
    /// Panics if `objective` is empty or contains a non-finite value; use
    /// [`LpProblem::try_new_maximize`] for a fallible version.
    #[must_use]
    pub fn maximize(objective: &[f64]) -> Self {
        Self::try_new_maximize(objective).expect("invalid objective")
    }

    /// Creates a minimization problem with the given objective coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `objective` is empty or contains a non-finite value; use
    /// [`LpProblem::try_new_minimize`] for a fallible version.
    #[must_use]
    pub fn minimize(objective: &[f64]) -> Self {
        Self::try_new_minimize(objective).expect("invalid objective")
    }

    /// Fallible constructor for a maximization problem.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::EmptyObjective`] for an empty coefficient slice and
    /// [`LpError::NonFiniteInput`] if any coefficient is NaN or infinite.
    pub fn try_new_maximize(objective: &[f64]) -> Result<Self, LpError> {
        Self::try_new(Direction::Maximize, objective)
    }

    /// Fallible constructor for a minimization problem.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LpProblem::try_new_maximize`].
    pub fn try_new_minimize(objective: &[f64]) -> Result<Self, LpError> {
        Self::try_new(Direction::Minimize, objective)
    }

    fn try_new(direction: Direction, objective: &[f64]) -> Result<Self, LpError> {
        if objective.is_empty() {
            return Err(LpError::EmptyObjective);
        }
        if objective.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NonFiniteInput);
        }
        Ok(LpProblem {
            direction,
            objective: objective.to_vec(),
            constraints: Vec::new(),
        })
    }

    /// Adds the constraint `coeffs · x  rel  rhs`.
    ///
    /// Returns `&mut self` so constraints can be chained.
    ///
    /// # Errors
    ///
    /// * [`LpError::DimensionMismatch`] if `coeffs.len()` differs from the
    ///   number of decision variables.
    /// * [`LpError::NonFiniteInput`] if any coefficient or `rhs` is NaN or
    ///   infinite.
    pub fn subject_to(
        &mut self,
        coeffs: &[f64],
        relation: Relation,
        rhs: f64,
    ) -> Result<&mut Self, LpError> {
        if coeffs.len() != self.objective.len() {
            return Err(LpError::DimensionMismatch {
                expected: self.objective.len(),
                got: coeffs.len(),
            });
        }
        if coeffs.iter().any(|c| !c.is_finite()) || !rhs.is_finite() {
            return Err(LpError::NonFiniteInput);
        }
        self.constraints.push(ConstraintRow {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
        Ok(self)
    }

    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// `true` if this is a maximization problem.
    #[must_use]
    pub fn is_maximization(&self) -> bool {
        self.direction == Direction::Maximize
    }

    /// The objective coefficient vector.
    #[must_use]
    pub fn objective_coeffs(&self) -> &[f64] {
        &self.objective
    }

    /// Solves the program with default [`SimplexOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the simplex fails to converge.
    /// Infeasibility and unboundedness are *not* errors: they are reported
    /// through [`LpSolution::status`].
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves the program with explicit solver options.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the simplex fails to converge
    /// within `options.max_iterations`.
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<LpSolution, LpError> {
        simplex::solve(self, options)
    }

    /// Checks whether a candidate point satisfies every constraint and the
    /// non-negativity bounds within tolerance `tol`.
    ///
    /// This is the verification hook used by downstream property tests: any
    /// schedule produced by the REAP controller must pass this check on its
    /// originating LP.
    #[must_use]
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        if x.iter().any(|&v| v < -tol || !v.is_finite()) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }

    /// Evaluates the objective `c · x` at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of decision variables.
    #[must_use]
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.num_vars(),
            "point dimension {} does not match problem dimension {}",
            x.len(),
            self.num_vars()
        );
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }
}

impl std::fmt::Display for LpProblem {
    /// Writes the program in a conventional algebraic form, e.g.
    /// `maximize 3 x0 + 2 x1` followed by one constraint per line.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verb = if self.is_maximization() {
            "maximize"
        } else {
            "minimize"
        };
        let term = |c: f64, j: usize| format!("{c} x{j}");
        let lhs = |coeffs: &[f64]| -> String {
            let terms: Vec<String> = coeffs
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0.0)
                .map(|(j, &c)| term(c, j))
                .collect();
            if terms.is_empty() {
                "0".to_string()
            } else {
                terms.join(" + ")
            }
        };
        writeln!(f, "{verb} {}", lhs(&self.objective))?;
        writeln!(f, "subject to")?;
        for c in &self.constraints {
            let rel = match c.relation {
                Relation::Le => "<=",
                Relation::Eq => "==",
                Relation::Ge => ">=",
            };
            writeln!(f, "  {} {rel} {}", lhs(&c.coeffs), c.rhs)?;
        }
        write!(f, "  x >= 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_writes_algebraic_form() {
        let mut p = LpProblem::maximize(&[3.0, 0.0, 2.0]);
        p.subject_to(&[1.0, 1.0, 0.0], Relation::Le, 4.0).unwrap();
        p.subject_to(&[0.0, 0.0, 0.0], Relation::Eq, 0.0).unwrap();
        let text = p.to_string();
        assert!(text.contains("maximize 3 x0 + 2 x2"));
        assert!(text.contains("1 x0 + 1 x1 <= 4"));
        assert!(text.contains("0 == 0"));
        assert!(text.contains("x >= 0"));
        let q = LpProblem::minimize(&[1.0]);
        assert!(q.to_string().starts_with("minimize"));
    }

    #[test]
    fn builder_tracks_dimensions() {
        let mut p = LpProblem::maximize(&[1.0, 2.0, 3.0]);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_constraints(), 0);
        p.subject_to(&[1.0, 1.0, 1.0], Relation::Le, 10.0).unwrap();
        assert_eq!(p.num_constraints(), 1);
        assert!(p.is_maximization());
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut p = LpProblem::maximize(&[1.0, 2.0]);
        let err = p.subject_to(&[1.0], Relation::Le, 1.0).unwrap_err();
        assert_eq!(
            err,
            LpError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn non_finite_inputs_are_rejected() {
        assert_eq!(
            LpProblem::try_new_maximize(&[f64::NAN]).unwrap_err(),
            LpError::NonFiniteInput
        );
        let mut p = LpProblem::maximize(&[1.0]);
        assert_eq!(
            p.subject_to(&[f64::INFINITY], Relation::Le, 1.0)
                .unwrap_err(),
            LpError::NonFiniteInput
        );
        let mut p = LpProblem::maximize(&[1.0]);
        assert_eq!(
            p.subject_to(&[1.0], Relation::Le, f64::NAN).unwrap_err(),
            LpError::NonFiniteInput
        );
    }

    #[test]
    fn empty_objective_is_rejected() {
        assert_eq!(
            LpProblem::try_new_maximize(&[]).unwrap_err(),
            LpError::EmptyObjective
        );
    }

    #[test]
    fn relation_flip() {
        assert_eq!(Relation::Le.flipped(), Relation::Ge);
        assert_eq!(Relation::Ge.flipped(), Relation::Le);
        assert_eq!(Relation::Eq.flipped(), Relation::Eq);
    }

    #[test]
    fn feasibility_check() {
        let mut p = LpProblem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 1.0], Relation::Le, 4.0).unwrap();
        p.subject_to(&[1.0, 0.0], Relation::Ge, 1.0).unwrap();
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(p.is_feasible(&[4.0, 0.0], 1e-9));
        assert!(!p.is_feasible(&[0.0, 0.0], 1e-9)); // violates x >= 1
        assert!(!p.is_feasible(&[5.0, 0.0], 1e-9)); // violates sum <= 4
        assert!(!p.is_feasible(&[-0.1, 0.0], 1e-9)); // negative variable
        assert!(!p.is_feasible(&[1.0], 1e-9)); // wrong dimension
    }

    #[test]
    fn objective_value_evaluates_dot_product() {
        let p = LpProblem::maximize(&[2.0, -1.0]);
        assert_eq!(p.objective_value(&[3.0, 4.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn objective_value_panics_on_bad_dim() {
        let p = LpProblem::maximize(&[2.0, -1.0]);
        let _ = p.objective_value(&[3.0]);
    }
}
