//! A dense-tableau **simplex** linear-programming solver.
//!
//! This crate is the optimization substrate behind the REAP runtime
//! controller (Bhat et al., DAC 2019). Algorithm 1 of the paper is a
//! tableau simplex: build a tableau from the objective and constraints, add
//! slack variables, repeatedly select a pivot column (largest reduced cost)
//! and pivot row (minimum ratio), and stop when no entry of the cost row is
//! positive. [`LpProblem::solve`] implements exactly that procedure,
//! generalized to a textbook **two-phase** method so that equality and `>=`
//! constraints (which need artificial variables) are handled as well.
//!
//! Design notes:
//!
//! * All decision variables are non-negative (`x >= 0`), matching the REAP
//!   formulation where every time allocation `t_i >= 0` (Eq. 4 of the paper).
//! * Pivot selection defaults to Dantzig's rule (largest coefficient, the
//!   rule described in the paper) and falls back to Bland's rule after a run
//!   of degenerate pivots so the solver cannot cycle.
//! * [`oracle`] contains a brute-force vertex-enumeration solver used by the
//!   test-suite as an independent source of truth for small problems.
//!
//! # Examples
//!
//! Maximize `3x + 2y` subject to `x + y <= 4`, `x + 3y <= 6`:
//!
//! ```
//! use reap_lp::{LpProblem, LpStatus, Relation};
//!
//! # fn main() -> Result<(), reap_lp::LpError> {
//! let mut problem = LpProblem::maximize(&[3.0, 2.0]);
//! problem.subject_to(&[1.0, 1.0], Relation::Le, 4.0)?;
//! problem.subject_to(&[1.0, 3.0], Relation::Le, 6.0)?;
//!
//! let solution = problem.solve()?;
//! assert_eq!(solution.status(), LpStatus::Optimal);
//! assert!((solution.objective() - 12.0).abs() < 1e-9);
//! assert!((solution.values()[0] - 4.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod oracle;
mod problem;
mod simplex;
mod solution;

pub use error::LpError;
pub use problem::{LpProblem, Relation};
pub use simplex::{PivotRule, SimplexOptions};
pub use solution::{LpSolution, LpStatus};
