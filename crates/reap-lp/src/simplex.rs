//! Two-phase dense-tableau simplex implementation.
//!
//! The tableau layout mirrors the description in Algorithm 1 of the REAP
//! paper: constraint rows followed by a cost row; each iteration finds the
//! pivot column with the largest cost-row entry, finds the pivot row with
//! the minimum ratio test, pivots, and stops when the cost row has no
//! positive entry.

// Index-based loops below mirror the textbook linear-algebra notation;
// iterator rewrites would obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use crate::error::LpError;
use crate::problem::{Direction, LpProblem, Relation};
use crate::solution::LpSolution;

/// Pivot-column selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PivotRule {
    /// Dantzig's rule: enter the column with the largest reduced cost.
    /// This is the "largest value in the last row" rule of the paper's
    /// Algorithm 1. Fast in practice, can cycle on degenerate problems
    /// (the solver auto-falls back to Bland when it detects stalling).
    #[default]
    Dantzig,
    /// Bland's rule: enter the lowest-index improving column. Slower but
    /// provably cycle-free.
    Bland,
}

/// Tuning knobs for the simplex solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexOptions {
    /// Hard cap on pivots across both phases. Mirrors the `max. iterations`
    /// input of the paper's Algorithm 1.
    pub max_iterations: usize,
    /// Numerical tolerance used for reduced-cost and ratio tests.
    pub tol: f64,
    /// Initial pivot rule (may degrade to Bland on degeneracy).
    pub pivot_rule: PivotRule,
    /// After this many consecutive degenerate pivots, switch to Bland's
    /// rule permanently to guarantee termination.
    pub degenerate_switch: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 10_000,
            tol: 1e-9,
            pivot_rule: PivotRule::Dantzig,
            degenerate_switch: 32,
        }
    }
}

/// Dense simplex tableau.
///
/// Column layout: `[structural | slack/surplus | artificial]`, with the
/// right-hand side stored as the final entry of each row. The cost row is
/// kept separately in `obj` with the convention `obj[j] = c_j - z_j`
/// (reduced cost) and `obj[rhs] = -z` (negated objective value).
struct Tableau {
    rows: Vec<Vec<f64>>,
    obj: Vec<f64>,
    basis: Vec<usize>,
    n_total: usize,
}

enum PivotOutcome {
    Optimal,
    Unbounded,
    Pivoted { degenerate: bool },
}

impl Tableau {
    fn rhs_index(&self) -> usize {
        self.n_total
    }

    /// Rebuilds the cost row for the cost vector `cost` (length `n_total`),
    /// pricing out the current basis so all basic columns have zero reduced
    /// cost.
    fn price_out(&mut self, cost: &[f64]) {
        let rhs = self.rhs_index();
        self.obj = cost.to_vec();
        self.obj.push(0.0);
        for (i, row) in self.rows.iter().enumerate() {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                for j in 0..=rhs {
                    self.obj[j] -= cb * row[j];
                }
            }
        }
    }

    /// Selects the entering column among `allowed`, or `None` at optimality.
    fn entering_column(&self, rule: PivotRule, tol: f64, banned_from: usize) -> Option<usize> {
        match rule {
            PivotRule::Dantzig => {
                let mut best: Option<(usize, f64)> = None;
                for (j, &r) in self.obj[..self.n_total].iter().enumerate() {
                    if j >= banned_from {
                        break;
                    }
                    if r > tol && best.is_none_or(|(_, br)| r > br) {
                        best = Some((j, r));
                    }
                }
                best.map(|(j, _)| j)
            }
            PivotRule::Bland => self.obj[..self.n_total.min(banned_from)]
                .iter()
                .position(|&r| r > tol),
        }
    }

    /// Minimum-ratio test for the entering column `q`. Ties are broken by
    /// the smallest basis index (a lexicographic-flavoured rule that, with
    /// Bland's entering rule, prevents cycling).
    fn leaving_row(&self, q: usize, tol: f64) -> Option<usize> {
        let rhs = self.rhs_index();
        let mut best: Option<(usize, f64)> = None;
        for (i, row) in self.rows.iter().enumerate() {
            let a = row[q];
            if a > tol {
                let ratio = row[rhs] / a;
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - tol
                            || ((ratio - br).abs() <= tol && self.basis[i] < self.basis[bi])
                        {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Performs the pivot on `(p, q)`: normalizes row `p`, eliminates column
    /// `q` from every other row and from the cost row.
    fn pivot(&mut self, p: usize, q: usize) {
        let rhs = self.rhs_index();
        let piv = self.rows[p][q];
        debug_assert!(piv.abs() > 0.0, "pivot on zero element");
        for j in 0..=rhs {
            self.rows[p][j] /= piv;
        }
        // Snapshot the pivot row to satisfy the borrow checker cheaply.
        let pivot_row = self.rows[p].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == p {
                continue;
            }
            let factor = row[q];
            if factor != 0.0 {
                for j in 0..=rhs {
                    row[j] -= factor * pivot_row[j];
                }
                row[q] = 0.0; // kill round-off in the eliminated column
            }
        }
        let factor = self.obj[q];
        if factor != 0.0 {
            for j in 0..=rhs {
                self.obj[j] -= factor * pivot_row[j];
            }
            self.obj[q] = 0.0;
        }
        self.basis[p] = q;
    }

    /// One simplex step: choose pivot column and row, pivot.
    fn step(&mut self, rule: PivotRule, tol: f64, banned_from: usize) -> PivotOutcome {
        let Some(q) = self.entering_column(rule, tol, banned_from) else {
            return PivotOutcome::Optimal;
        };
        let Some(p) = self.leaving_row(q, tol) else {
            return PivotOutcome::Unbounded;
        };
        let degenerate = self.rows[p][self.rhs_index()].abs() <= tol;
        self.pivot(p, q);
        PivotOutcome::Pivoted { degenerate }
    }
}

/// Driver for the pivot loop of one phase.
///
/// `banned_from`: first column index that is not allowed to enter the basis
/// (used to exclude artificial columns in phase 2).
fn run_phase(
    tab: &mut Tableau,
    options: &SimplexOptions,
    banned_from: usize,
    iterations: &mut usize,
) -> Result<bool, LpError> {
    let mut rule = options.pivot_rule;
    let mut degenerate_run = 0usize;
    loop {
        if *iterations >= options.max_iterations {
            return Err(LpError::IterationLimit {
                limit: options.max_iterations,
            });
        }
        match tab.step(rule, options.tol, banned_from) {
            PivotOutcome::Optimal => return Ok(true),
            PivotOutcome::Unbounded => return Ok(false),
            PivotOutcome::Pivoted { degenerate } => {
                *iterations += 1;
                if degenerate {
                    degenerate_run += 1;
                    if degenerate_run >= options.degenerate_switch {
                        rule = PivotRule::Bland;
                    }
                } else {
                    degenerate_run = 0;
                    rule = options.pivot_rule;
                }
            }
        }
    }
}

/// Solves `problem` with the two-phase simplex method.
pub(crate) fn solve(problem: &LpProblem, options: &SimplexOptions) -> Result<LpSolution, LpError> {
    let n = problem.num_vars();
    let m = problem.num_constraints();

    // --- Normalize rows: rhs >= 0, count slack/surplus/artificial columns.
    struct NormRow {
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    }
    let norm: Vec<NormRow> = problem
        .constraints
        .iter()
        .map(|c| {
            if c.rhs < 0.0 {
                NormRow {
                    coeffs: c.coeffs.iter().map(|a| -a).collect(),
                    relation: c.relation.flipped(),
                    rhs: -c.rhs,
                }
            } else {
                NormRow {
                    coeffs: c.coeffs.clone(),
                    relation: c.relation,
                    rhs: c.rhs,
                }
            }
        })
        .collect();

    let n_slack = norm.iter().filter(|r| r.relation != Relation::Eq).count();
    let n_art = norm.iter().filter(|r| r.relation != Relation::Le).count();
    let artificial_start = n + n_slack;
    let n_total = n + n_slack + n_art;

    // --- Build the tableau.
    let mut rows = Vec::with_capacity(m);
    let mut basis = Vec::with_capacity(m);
    let mut slack_cursor = n;
    let mut art_cursor = artificial_start;
    for r in &norm {
        let mut row = vec![0.0; n_total + 1];
        row[..n].copy_from_slice(&r.coeffs);
        row[n_total] = r.rhs;
        match r.relation {
            Relation::Le => {
                row[slack_cursor] = 1.0;
                basis.push(slack_cursor);
                slack_cursor += 1;
            }
            Relation::Ge => {
                row[slack_cursor] = -1.0;
                slack_cursor += 1;
                row[art_cursor] = 1.0;
                basis.push(art_cursor);
                art_cursor += 1;
            }
            Relation::Eq => {
                row[art_cursor] = 1.0;
                basis.push(art_cursor);
                art_cursor += 1;
            }
        }
        rows.push(row);
    }

    let mut tab = Tableau {
        rows,
        obj: Vec::new(),
        basis,
        n_total,
    };

    let mut iterations = 0usize;

    // --- Phase 1: drive artificials to zero (maximize -sum of artificials).
    if n_art > 0 {
        let mut phase1_cost = vec![0.0; n_total];
        for c in phase1_cost.iter_mut().skip(artificial_start) {
            *c = -1.0;
        }
        tab.price_out(&phase1_cost);
        let finished = run_phase(&mut tab, options, n_total, &mut iterations)?;
        debug_assert!(finished, "phase-1 objective is bounded by construction");
        let z1 = -tab.obj[tab.rhs_index()];
        if z1 < -options.tol.max(1e-7) {
            return Ok(LpSolution::infeasible(iterations));
        }
        // Drive any residual basic artificials (at value zero) out of the
        // basis so phase 2 cannot be polluted by them. If a row has no
        // eligible pivot it is redundant; the artificial stays basic at 0,
        // which is harmless because artificial columns are banned below.
        for i in 0..tab.rows.len() {
            if tab.basis[i] >= artificial_start {
                let pivot_col =
                    (0..artificial_start).find(|&j| tab.rows[i][j].abs() > options.tol.max(1e-8));
                if let Some(q) = pivot_col {
                    tab.pivot(i, q);
                    iterations += 1;
                }
            }
        }
    }

    // --- Phase 2: optimize the real objective (internally always maximize).
    let sign = match problem.direction {
        Direction::Maximize => 1.0,
        Direction::Minimize => -1.0,
    };
    let mut phase2_cost = vec![0.0; n_total];
    for (j, &c) in problem.objective.iter().enumerate() {
        phase2_cost[j] = sign * c;
    }
    tab.price_out(&phase2_cost);
    let finished = run_phase(&mut tab, options, artificial_start, &mut iterations)?;
    if !finished {
        return Ok(LpSolution::unbounded(iterations));
    }

    // --- Extract the solution.
    let mut x = vec![0.0; n];
    let rhs = tab.rhs_index();
    for (i, &b) in tab.basis.iter().enumerate() {
        if b < n {
            x[b] = tab.rows[i][rhs];
        }
    }
    // Clean tiny negative round-off so downstream consumers see x >= 0.
    for v in &mut x {
        if *v < 0.0 && *v > -1e-7 {
            *v = 0.0;
        }
    }
    let objective = sign * -tab.obj[rhs];
    Ok(LpSolution::optimal(objective, x, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpStatus, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y ; x <= 4 ; 2y <= 12 ; 3x + 2y <= 18 -> z* = 36 at (2, 6).
        let mut p = LpProblem::maximize(&[3.0, 5.0]);
        p.subject_to(&[1.0, 0.0], Relation::Le, 4.0).unwrap();
        p.subject_to(&[0.0, 2.0], Relation::Le, 12.0).unwrap();
        p.subject_to(&[3.0, 2.0], Relation::Le, 18.0).unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.status(), LpStatus::Optimal);
        assert_close(s.objective(), 36.0);
        assert_close(s.values()[0], 2.0);
        assert_close(s.values()[1], 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y ; x + y >= 10 ; x >= 3 -> z* = 2*10? No:
        // with x >= 3, cheapest is x = 10, y = 0 -> z = 20.
        let mut p = LpProblem::minimize(&[2.0, 3.0]);
        p.subject_to(&[1.0, 1.0], Relation::Ge, 10.0).unwrap();
        p.subject_to(&[1.0, 0.0], Relation::Ge, 3.0).unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.status(), LpStatus::Optimal);
        assert_close(s.objective(), 20.0);
        assert_close(s.values()[0], 10.0);
    }

    #[test]
    fn equality_constraints_solved_via_phase_one() {
        // max x + 2y ; x + y = 5 ; x <= 3 -> optimum (0, 5), z = 10.
        let mut p = LpProblem::maximize(&[1.0, 2.0]);
        p.subject_to(&[1.0, 1.0], Relation::Eq, 5.0).unwrap();
        p.subject_to(&[1.0, 0.0], Relation::Le, 3.0).unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.status(), LpStatus::Optimal);
        assert_close(s.objective(), 10.0);
        assert_close(s.values()[0], 0.0);
        assert_close(s.values()[1], 5.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2 cannot both hold.
        let mut p = LpProblem::maximize(&[1.0]);
        p.subject_to(&[1.0], Relation::Le, 1.0).unwrap();
        p.subject_to(&[1.0], Relation::Ge, 2.0).unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.status(), LpStatus::Infeasible);
        assert!(s.optimal_values().is_none());
    }

    #[test]
    fn unbounded_detected() {
        // max x with only x >= 1: unbounded above.
        let mut p = LpProblem::maximize(&[1.0]);
        p.subject_to(&[1.0], Relation::Ge, 1.0).unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.status(), LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x - y <= -2  is  x + y >= 2.
        let mut p = LpProblem::minimize(&[1.0, 1.0]);
        p.subject_to(&[-1.0, -1.0], Relation::Le, -2.0).unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.status(), LpStatus::Optimal);
        assert_close(s.objective(), 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP (multiple constraints active at the origin
        // vertex). Beale's cycling example adapted to our API.
        let mut p = LpProblem::maximize(&[0.75, -150.0, 0.02, -6.0]);
        p.subject_to(&[0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0)
            .unwrap();
        p.subject_to(&[0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0)
            .unwrap();
        p.subject_to(&[0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0)
            .unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.status(), LpStatus::Optimal);
        assert_close(s.objective(), 0.05);
    }

    #[test]
    fn bland_rule_finds_same_optimum() {
        let mut p = LpProblem::maximize(&[3.0, 5.0]);
        p.subject_to(&[1.0, 0.0], Relation::Le, 4.0).unwrap();
        p.subject_to(&[0.0, 2.0], Relation::Le, 12.0).unwrap();
        p.subject_to(&[3.0, 2.0], Relation::Le, 18.0).unwrap();
        let opts = SimplexOptions {
            pivot_rule: PivotRule::Bland,
            ..SimplexOptions::default()
        };
        let s = p.solve_with(&opts).unwrap();
        assert_close(s.objective(), 36.0);
    }

    #[test]
    fn iteration_limit_is_an_error() {
        let mut p = LpProblem::maximize(&[3.0, 5.0]);
        p.subject_to(&[1.0, 1.0], Relation::Le, 4.0).unwrap();
        let opts = SimplexOptions {
            max_iterations: 0,
            ..SimplexOptions::default()
        };
        assert_eq!(
            p.solve_with(&opts).unwrap_err(),
            LpError::IterationLimit { limit: 0 }
        );
    }

    #[test]
    fn redundant_equality_rows_are_tolerated() {
        // Duplicate equality rows leave a basic artificial at zero in a
        // redundant row; the solver must still find the optimum.
        let mut p = LpProblem::maximize(&[1.0, 1.0]);
        p.subject_to(&[1.0, 1.0], Relation::Eq, 3.0).unwrap();
        p.subject_to(&[2.0, 2.0], Relation::Eq, 6.0).unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.status(), LpStatus::Optimal);
        assert_close(s.objective(), 3.0);
    }

    #[test]
    fn reap_shaped_problem_matches_paper_checkpoint() {
        // The REAP LP at Eb = 5 J, alpha = 1 with the paper's five design
        // points: the optimum mixes DP4 (42%) and DP5 (58%) of the hour.
        // Variables: [t1..t5, t_off] in seconds; powers in mW; budget in mJ.
        let tp = 3600.0;
        let acc = [94.0, 93.0, 92.0, 90.0, 76.0];
        let pw = [2.76, 2.30, 1.82, 1.64, 1.20];
        let p_off = 0.05;
        let mut obj: Vec<f64> = acc.iter().map(|a| a / tp).collect();
        obj.push(0.0); // t_off contributes nothing
        let mut p = LpProblem::maximize(&obj);
        p.subject_to(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0], Relation::Eq, tp)
            .unwrap();
        p.subject_to(
            &[pw[0], pw[1], pw[2], pw[3], pw[4], p_off],
            Relation::Le,
            5000.0,
        )
        .unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.status(), LpStatus::Optimal);
        let t4 = s.values()[3] / tp;
        let t5 = s.values()[4] / tp;
        assert!((t4 - 0.42).abs() < 0.02, "t4 fraction = {t4}");
        assert!((t5 - 0.58).abs() < 0.02, "t5 fraction = {t5}");
        // No other DP is used and the device never turns off at 5 J.
        assert!(s.values()[0] < 1e-6);
        assert!(s.values()[1] < 1e-6);
        assert!(s.values()[2] < 1e-6);
        assert!(s.values()[5] < 1e-6);
    }

    #[test]
    fn solution_is_feasible_for_original_problem() {
        let mut p = LpProblem::maximize(&[1.0, 4.0, 2.0]);
        p.subject_to(&[5.0, 2.0, 2.0], Relation::Le, 145.0).unwrap();
        p.subject_to(&[4.0, 8.0, -8.0], Relation::Le, 260.0)
            .unwrap();
        p.subject_to(&[1.0, 1.0, 4.0], Relation::Le, 190.0).unwrap();
        let s = p.solve().unwrap();
        assert!(s.is_optimal());
        assert!(p.is_feasible(s.values(), 1e-6));
        assert_close(p.objective_value(s.values()), s.objective());
    }
}
