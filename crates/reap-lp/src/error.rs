//! Error type for LP construction and solving.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// A constraint's coefficient vector length differs from the number of
    /// decision variables in the objective.
    DimensionMismatch {
        /// Number of decision variables the problem was created with.
        expected: usize,
        /// Length of the offending coefficient slice.
        got: usize,
    },
    /// The objective vector was empty: a problem needs at least one variable.
    EmptyObjective,
    /// A coefficient, bound, or right-hand side was NaN or infinite.
    NonFiniteInput,
    /// The simplex iteration limit was reached before convergence.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, got } => write!(
                f,
                "constraint has {got} coefficients but the problem has {expected} variables"
            ),
            LpError::EmptyObjective => write!(f, "objective must have at least one variable"),
            LpError::NonFiniteInput => write!(f, "input contained a NaN or infinite value"),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex did not converge within {limit} iterations")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LpError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert_eq!(
            e.to_string(),
            "constraint has 2 coefficients but the problem has 3 variables"
        );
        assert!(LpError::EmptyObjective.to_string().contains("objective"));
        assert!(LpError::NonFiniteInput.to_string().contains("NaN"));
        assert!(LpError::IterationLimit { limit: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
