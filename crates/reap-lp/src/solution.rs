//! Solver output types.

use std::fmt;

/// Termination status of a simplex solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl fmt::Display for LpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LpStatus::Optimal => "optimal",
            LpStatus::Infeasible => "infeasible",
            LpStatus::Unbounded => "unbounded",
        };
        f.write_str(s)
    }
}

/// The result of solving an [`LpProblem`](crate::LpProblem).
///
/// `objective` and `values` are only meaningful when
/// [`status`](LpSolution::status) is [`LpStatus::Optimal`]; use
/// [`LpSolution::optimal_values`] to get them safely.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    status: LpStatus,
    objective: f64,
    values: Vec<f64>,
    iterations: usize,
}

impl LpSolution {
    pub(crate) fn optimal(objective: f64, values: Vec<f64>, iterations: usize) -> Self {
        LpSolution {
            status: LpStatus::Optimal,
            objective,
            values,
            iterations,
        }
    }

    pub(crate) fn infeasible(iterations: usize) -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::NAN,
            values: Vec::new(),
            iterations,
        }
    }

    pub(crate) fn unbounded(iterations: usize) -> Self {
        LpSolution {
            status: LpStatus::Unbounded,
            objective: f64::NAN,
            values: Vec::new(),
            iterations,
        }
    }

    /// Termination status.
    #[must_use]
    pub fn status(&self) -> LpStatus {
        self.status
    }

    /// `true` when the status is [`LpStatus::Optimal`].
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }

    /// Optimal objective value.
    ///
    /// NaN when the problem was infeasible or unbounded.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Values of the decision variables at the optimum.
    ///
    /// Empty when the problem was infeasible or unbounded.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns `(objective, values)` when optimal, `None` otherwise.
    #[must_use]
    pub fn optimal_values(&self) -> Option<(f64, &[f64])> {
        if self.is_optimal() {
            Some((self.objective, &self.values))
        } else {
            None
        }
    }

    /// Total simplex pivots performed (both phases).
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl fmt::Display for LpSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.status {
            LpStatus::Optimal => write!(
                f,
                "optimal: objective {:.6} after {} pivots",
                self.objective, self.iterations
            ),
            other => write!(f, "{other} after {} pivots", self.iterations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_accessors() {
        let s = LpSolution::optimal(3.5, vec![1.0, 2.5], 4);
        assert!(s.is_optimal());
        assert_eq!(s.objective(), 3.5);
        assert_eq!(s.values(), &[1.0, 2.5]);
        assert_eq!(s.iterations(), 4);
        let (obj, vals) = s.optimal_values().unwrap();
        assert_eq!(obj, 3.5);
        assert_eq!(vals, &[1.0, 2.5]);
    }

    #[test]
    fn non_optimal_accessors() {
        let s = LpSolution::infeasible(2);
        assert!(!s.is_optimal());
        assert!(s.objective().is_nan());
        assert!(s.values().is_empty());
        assert!(s.optimal_values().is_none());

        let u = LpSolution::unbounded(0);
        assert_eq!(u.status(), LpStatus::Unbounded);
    }

    #[test]
    fn display_is_never_empty() {
        assert!(!LpSolution::optimal(1.0, vec![1.0], 1)
            .to_string()
            .is_empty());
        assert!(LpSolution::infeasible(0).to_string().contains("infeasible"));
        assert!(LpSolution::unbounded(0).to_string().contains("unbounded"));
        assert_eq!(LpStatus::Optimal.to_string(), "optimal");
    }
}
