//! Brute-force vertex-enumeration LP oracle.
//!
//! For a bounded LP over `x >= 0`, some optimal solution lies at a vertex of
//! the feasible polytope, i.e. at the intersection of `n` linearly
//! independent active constraints drawn from the constraint rows and the
//! non-negativity bounds. This module enumerates **every** such candidate
//! basis, solves the resulting `n × n` linear system by Gaussian
//! elimination, filters for feasibility, and returns the best vertex.
//!
//! The cost is `C(m + n, n)` system solves, which is hopeless in general but
//! perfectly fine for the tiny randomized problems used to property-test the
//! simplex in [`crate::LpProblem::solve`]. Keep `n + m` below ~16.

// Index-based loops below mirror the textbook linear-algebra notation;
// iterator rewrites would obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use crate::problem::{LpProblem, Relation};

/// Outcome of the enumeration oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleResult {
    /// Best feasible vertex found: `(objective, point)`.
    Optimal {
        /// Objective value at the best vertex.
        objective: f64,
        /// Coordinates of the best vertex.
        point: Vec<f64>,
    },
    /// No candidate vertex satisfied every constraint. For a bounded
    /// problem this means the feasible set is empty.
    NoVertex,
}

/// Solves a tiny `n x n` dense linear system with partial pivoting.
///
/// Returns `None` when the matrix is (numerically) singular.
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>, tol: f64) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot_row =
            (col..n).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[pivot_row][col].abs() <= tol {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            if f != 0.0 {
                for k in col..n {
                    a[row][k] -= f * a[col][k];
                }
                b[row] -= f * b[col];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    if x.iter().all(|v| v.is_finite()) {
        Some(x)
    } else {
        None
    }
}

/// Visits every `k`-combination of `0..n`, invoking `f` with each index set.
fn for_each_combination(n: usize, k: usize, f: &mut impl FnMut(&[usize])) {
    if k > n {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        f(&idx);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Exhaustively enumerates candidate vertices of `problem` and returns the
/// best feasible one.
///
/// Equality constraints are always treated as active; the remaining active
/// set is chosen from inequality rows and the bounds `x_i = 0`.
///
/// This oracle **assumes the problem is bounded** (callers add box
/// constraints when generating random instances). For unbounded problems the
/// returned vertex is merely the best *vertex*, not a certificate of
/// optimality.
///
/// # Panics
///
/// Panics if the problem has more equality constraints than variables in a
/// way that over-determines the system (malformed test input).
#[must_use]
pub fn best_vertex(problem: &LpProblem, tol: f64) -> OracleResult {
    let n = problem.num_vars();
    // Candidate active hyperplanes: every constraint row (as equality) and
    // every bound x_i = 0.
    struct Plane {
        coeffs: Vec<f64>,
        rhs: f64,
        mandatory: bool,
    }
    let mut planes: Vec<Plane> = Vec::new();
    for c in &problem.constraints {
        planes.push(Plane {
            coeffs: c.coeffs.clone(),
            rhs: c.rhs,
            mandatory: c.relation == Relation::Eq,
        });
    }
    for i in 0..n {
        let mut coeffs = vec![0.0; n];
        coeffs[i] = 1.0;
        planes.push(Plane {
            coeffs,
            rhs: 0.0,
            mandatory: false,
        });
    }

    let mandatory: Vec<usize> = planes
        .iter()
        .enumerate()
        .filter(|(_, p)| p.mandatory)
        .map(|(i, _)| i)
        .collect();
    assert!(
        mandatory.len() <= n,
        "more equality constraints ({}) than variables ({})",
        mandatory.len(),
        n
    );
    let optional: Vec<usize> = planes
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.mandatory)
        .map(|(i, _)| i)
        .collect();
    let need = n - mandatory.len();

    let mut best: Option<(f64, Vec<f64>)> = None;
    let maximizing = problem.is_maximization();

    for_each_combination(optional.len(), need, &mut |chosen| {
        let mut active: Vec<usize> = mandatory.clone();
        active.extend(chosen.iter().map(|&k| optional[k]));
        let a: Vec<Vec<f64>> = active.iter().map(|&i| planes[i].coeffs.clone()).collect();
        let b: Vec<f64> = active.iter().map(|&i| planes[i].rhs).collect();
        let Some(x) = solve_dense(a, b, 1e-10) else {
            return;
        };
        if !problem.is_feasible(&x, tol) {
            return;
        }
        let obj = problem.objective_value(&x);
        let better = match &best {
            None => true,
            Some((bobj, _)) => {
                if maximizing {
                    obj > *bobj
                } else {
                    obj < *bobj
                }
            }
        };
        if better {
            best = Some((obj, x));
        }
    });

    match best {
        Some((objective, point)) => OracleResult::Optimal { objective, point },
        None => OracleResult::NoVertex,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpProblem, Relation};

    #[test]
    fn dense_solver_inverts_simple_system() {
        // x + y = 3, x - y = 1 -> (2, 1)
        let a = vec![vec![1.0, 1.0], vec![1.0, -1.0]];
        let x = solve_dense(a, vec![3.0, 1.0], 1e-12).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_solver_rejects_singular() {
        let a = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert!(solve_dense(a, vec![1.0, 2.0], 1e-12).is_none());
    }

    #[test]
    fn combination_count_is_binomial() {
        let mut count = 0usize;
        for_each_combination(5, 3, &mut |_| count += 1);
        assert_eq!(count, 10);
        count = 0;
        for_each_combination(4, 0, &mut |c| {
            assert!(c.is_empty());
            count += 1
        });
        assert_eq!(count, 1);
        count = 0;
        for_each_combination(3, 4, &mut |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn oracle_matches_textbook_optimum() {
        let mut p = LpProblem::maximize(&[3.0, 5.0]);
        p.subject_to(&[1.0, 0.0], Relation::Le, 4.0).unwrap();
        p.subject_to(&[0.0, 2.0], Relation::Le, 12.0).unwrap();
        p.subject_to(&[3.0, 2.0], Relation::Le, 18.0).unwrap();
        match best_vertex(&p, 1e-9) {
            OracleResult::Optimal { objective, point } => {
                assert!((objective - 36.0).abs() < 1e-9);
                assert!((point[0] - 2.0).abs() < 1e-9);
                assert!((point[1] - 6.0).abs() < 1e-9);
            }
            OracleResult::NoVertex => panic!("oracle found no vertex"),
        }
    }

    #[test]
    fn oracle_reports_infeasible_as_no_vertex() {
        let mut p = LpProblem::maximize(&[1.0]);
        p.subject_to(&[1.0], Relation::Le, 1.0).unwrap();
        p.subject_to(&[1.0], Relation::Ge, 2.0).unwrap();
        assert_eq!(best_vertex(&p, 1e-9), OracleResult::NoVertex);
    }

    #[test]
    fn oracle_handles_equalities() {
        let mut p = LpProblem::maximize(&[1.0, 2.0]);
        p.subject_to(&[1.0, 1.0], Relation::Eq, 5.0).unwrap();
        p.subject_to(&[1.0, 0.0], Relation::Le, 3.0).unwrap();
        match best_vertex(&p, 1e-9) {
            OracleResult::Optimal { objective, .. } => assert!((objective - 10.0).abs() < 1e-9),
            OracleResult::NoVertex => panic!("no vertex"),
        }
    }
}
