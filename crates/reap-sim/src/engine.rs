//! The hour-by-hour simulation loop.

use std::borrow::Cow;
use std::fmt;

use reap_core::{static_schedule, ReapController, Schedule, SolverKind};
use reap_units::Energy;

use crate::report::{HourRecord, SimReport};
use crate::{Scenario, SimError};

/// The planning policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The REAP optimizer (mixes design points each hour).
    Reap,
    /// A single static design point, duty-cycled against the budget.
    Static(u8),
}

impl Policy {
    /// Short name for reports: borrowed `"REAP"`, or `"DPk"` formatted on
    /// demand (reports store the [`Policy`] itself, not a name).
    #[must_use]
    pub fn name(self) -> Cow<'static, str> {
        match self {
            Policy::Reap => Cow::Borrowed("REAP"),
            Policy::Static(id) => Cow::Owned(format!("DP{id}")),
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Reap => f.write_str("REAP"),
            Policy::Static(id) => write!(f, "DP{id}"),
        }
    }
}

/// Precomputes the policy-independent budget sequence of the open-loop
/// protocol: the allocator runs against a *virtual* battery that assumes
/// every granted budget is fully spent, so the resulting sequence depends
/// only on the harvest trace.
///
/// Because the sequence is policy-independent, callers running several
/// policies over one scenario ([`Scenario::run_all`],
/// [`run_matrix`](crate::run_matrix)) compute it once and share it.
pub(crate) fn open_loop_budgets(scenario: &Scenario) -> Vec<Energy> {
    let mut allocator = scenario.allocator.instantiate();
    let mut virtual_battery = scenario.battery.clone();
    let floor = scenario.problem.min_budget();
    let mut budgets = Vec::with_capacity(scenario.trace.len_hours());
    let mut harvested_last_hour = Energy::ZERO;
    for (i, harvested) in scenario.trace.iter().enumerate() {
        let hour = (i % 24) as u32;
        let proposed = allocator.allocate(hour, harvested_last_hour, &virtual_battery);
        // Grant no more than the virtual supply could actually deliver.
        let budget = proposed
            .min(virtual_battery.deliverable() + harvested)
            .max(floor.min(virtual_battery.deliverable()));
        // Virtual accounting: the whole budget is spent, the harvest is
        // banked.
        virtual_battery.charge(harvested);
        virtual_battery.discharge(budget);
        budgets.push(budget);
        harvested_last_hour = harvested;
    }
    budgets
}

/// Runs `scenario` under `policy`, optionally against an open-loop budget
/// sequence the caller already computed (`None` derives budgets from the
/// scenario's own mode, exactly as before).
pub(crate) fn run_with_budgets(
    scenario: &Scenario,
    policy: Policy,
    shared_budgets: Option<&[Energy]>,
) -> Result<SimReport, SimError> {
    // Fail fast on unknown static ids.
    if let Policy::Static(id) = policy {
        scenario.problem.point(id)?;
    }
    // The frontier solver: one precomputed frontier serves all 720 hourly
    // plans of a month-long trace.
    let mut controller =
        ReapController::with_solver(scenario.problem.clone(), SolverKind::Frontier);
    let mut allocator = scenario.allocator.instantiate();
    let mut battery = scenario.battery.clone();
    let problem = &scenario.problem;
    let floor = problem.min_budget();
    let precomputed: Option<Cow<'_, [Energy]>> = match (shared_budgets, scenario.budget_mode) {
        (Some(budgets), crate::BudgetMode::OpenLoop) => Some(Cow::Borrowed(budgets)),
        (None, crate::BudgetMode::OpenLoop) => Some(Cow::Owned(open_loop_budgets(scenario))),
        (_, crate::BudgetMode::ClosedLoop) => None,
    };

    let mut hours = Vec::with_capacity(scenario.trace.len_hours());
    let mut harvested_last_hour = Energy::ZERO;

    for (i, harvested) in scenario.trace.iter().enumerate() {
        let day = (i / 24) as u32;
        let hour = (i % 24) as u32;

        // 1. The allocation layer proposes a budget. Open-loop: from the
        //    precomputed, policy-independent sequence. Closed-loop: from
        //    this policy's own battery trajectory. Optimistic proposals
        //    are fine — execution below browns out when the actual supply
        //    falls short — but the floor must stay reachable whenever the
        //    battery can still provide it, so the monitoring circuitry is
        //    kept alive through dark hours.
        let budget = match &precomputed {
            Some(budgets) => budgets[i],
            None => {
                let proposed = allocator.allocate(hour, harvested_last_hour, &battery);
                proposed.max(floor.min(battery.deliverable()))
            }
        };

        // 2. Plan the hour.
        let planned: Schedule = match policy {
            Policy::Reap => controller.plan(budget)?,
            Policy::Static(id) => {
                let effective = budget.max(floor);
                static_schedule(problem, id, effective)?
            }
        };

        // 3. Execute: draw from the incoming harvest first, then the
        //    battery; brown out proportionally if supply falls short.
        let needed = planned.energy();
        let mut realized_fraction = 1.0;
        if harvested >= needed {
            battery.charge(harvested - needed);
        } else {
            let deficit = needed - harvested;
            let delivered = battery.discharge(deficit);
            if delivered.joules() + 1e-12 < deficit.joules() {
                let supplied = harvested + delivered;
                realized_fraction = if needed.joules() > 0.0 {
                    (supplied / needed).clamp(0.0, 1.0)
                } else {
                    1.0
                };
            }
        }

        hours.push(HourRecord {
            day,
            hour,
            harvested,
            budget,
            planned,
            realized_fraction,
            battery_level: battery.level(),
        });
        harvested_last_hour = harvested;
    }

    Ok(SimReport::new(
        policy,
        allocator.name(),
        problem.alpha(),
        hours,
    ))
}

/// Runs `scenario` under `policy` with budgets derived from the
/// scenario's own mode.
pub(crate) fn run(scenario: &Scenario, policy: Policy) -> Result<SimReport, SimError> {
    run_with_budgets(scenario, policy, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocatorKind, Scenario};
    use reap_core::OperatingPoint;
    use reap_harvest::{Battery, HarvestTrace};
    use reap_units::Power;

    fn paper_points() -> Vec<OperatingPoint> {
        let specs = [
            (1u8, 0.94, 2.76),
            (2, 0.93, 2.30),
            (3, 0.92, 1.82),
            (4, 0.90, 1.64),
            (5, 0.76, 1.20),
        ];
        specs
            .iter()
            .map(|&(id, a, mw)| {
                OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw)).unwrap()
            })
            .collect()
    }

    fn scenario(seed: u64) -> Scenario {
        Scenario::builder(HarvestTrace::september_like(seed))
            .points(paper_points())
            .build()
            .unwrap()
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::Reap.name(), "REAP");
        assert_eq!(Policy::Static(3).name(), "DP3");
    }

    #[test]
    fn unknown_static_id_fails_fast() {
        let err = scenario(1).run(Policy::Static(77)).unwrap_err();
        assert!(matches!(err, SimError::Core(_)));
    }

    #[test]
    fn month_simulation_produces_720_hours() {
        let report = scenario(1).run(Policy::Reap).unwrap();
        assert_eq!(report.hours().len(), 720);
        assert_eq!(report.policy_name(), "REAP");
        assert_eq!(report.allocator_name(), "ewma");
    }

    #[test]
    fn energy_is_conserved_every_hour() {
        // battery(t) <= battery(t-1) + harvested (charging can only come
        // from harvest; consumption only lowers it).
        let report = scenario(2).run(Policy::Reap).unwrap();
        let initial = Battery::small_wearable().level();
        let mut prev = initial;
        for h in report.hours() {
            assert!(
                h.battery_level.joules() <= prev.joules() + h.harvested.joules() + 1e-9,
                "battery grew out of thin air on day {} hour {}",
                h.day,
                h.hour
            );
            prev = h.battery_level;
        }
    }

    #[test]
    fn realized_fraction_is_sane() {
        let report = scenario(3).run(Policy::Static(1)).unwrap();
        for h in report.hours() {
            assert!((0.0..=1.0).contains(&h.realized_fraction));
        }
    }

    #[test]
    fn reap_beats_static_dp1_over_a_month() {
        let s = scenario(4);
        let reap = s.run(Policy::Reap).unwrap();
        let dp1 = s.run(Policy::Static(1)).unwrap();
        assert!(
            reap.total_objective(1.0) > dp1.total_objective(1.0),
            "REAP {} vs DP1 {}",
            reap.total_objective(1.0),
            dp1.total_objective(1.0)
        );
        // And REAP's active time beats DP1's substantially (paper: +66%).
        assert!(
            reap.total_active_time().hours() > 1.2 * dp1.total_active_time().hours(),
            "active {} vs {}",
            reap.total_active_time(),
            dp1.total_active_time()
        );
    }

    #[test]
    fn allocator_choice_changes_the_outcome() {
        let base = scenario(5);
        let greedy = Scenario::builder(HarvestTrace::september_like(5))
            .points(paper_points())
            .allocator(AllocatorKind::Greedy)
            .build()
            .unwrap();
        let a = base.run(Policy::Reap).unwrap();
        let b = greedy.run(Policy::Reap).unwrap();
        assert_ne!(
            a.total_objective(1.0),
            b.total_objective(1.0),
            "allocators should not behave identically"
        );
    }

    #[test]
    fn determinism() {
        let a = scenario(6).run(Policy::Reap).unwrap();
        let b = scenario(6).run(Policy::Reap).unwrap();
        assert_eq!(a.total_objective(1.0), b.total_objective(1.0));
        assert_eq!(a.hours().len(), b.hours().len());
    }

    #[test]
    fn open_loop_budgets_are_policy_independent() {
        let s = scenario(7);
        let reap = s.run(Policy::Reap).unwrap();
        let dp5 = s.run(Policy::Static(5)).unwrap();
        for (a, b) in reap.hours().iter().zip(dp5.hours()) {
            assert_eq!(a.budget, b.budget, "day {} hour {}", a.day, a.hour);
        }
    }

    #[test]
    fn open_loop_reap_dominates_statics_every_hour() {
        // With identical budgets, LP optimality makes REAP's planned
        // objective at least every static's, hour by hour (the paper's
        // "consistently outperforms or matches").
        let s = scenario(8);
        let reap = s.run(Policy::Reap).unwrap();
        for id in [1u8, 3, 5] {
            let stat = s.run(Policy::Static(id)).unwrap();
            for (a, b) in reap.hours().iter().zip(stat.hours()) {
                assert!(
                    a.planned.objective(1.0) >= b.planned.objective(1.0) - 1e-9,
                    "REAP lost to DP{id} on day {} hour {}",
                    a.day,
                    a.hour
                );
            }
        }
    }

    #[test]
    fn closed_loop_mode_differs_from_open_loop() {
        use crate::BudgetMode;
        let open = scenario(9);
        let closed = Scenario::builder(HarvestTrace::september_like(9))
            .points(paper_points())
            .budget_mode(BudgetMode::ClosedLoop)
            .build()
            .unwrap();
        let a = open.run(Policy::Reap).unwrap();
        let b = closed.run(Policy::Reap).unwrap();
        assert_ne!(a.total_objective(1.0), b.total_objective(1.0));
    }
}
