//! The hour-by-hour simulation loop.

use std::borrow::Cow;
use std::fmt;

use reap_core::{static_schedule, ReapController, RecedingHorizonController, Schedule, SolverKind};
use reap_units::Energy;

use crate::report::{HourRecord, SimReport};
use crate::{Scenario, SimError};

/// The planning policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The REAP optimizer (mixes design points each hour).
    Reap,
    /// A single static design point, duty-cycled against the budget.
    Static(u8),
    /// The receding-horizon (MPC) policy: each hour, plan a joint LP over
    /// a `lookahead`-hour harvest forecast (from the scenario's
    /// [`ForecasterKind`](crate::ForecasterKind)), execute only the first
    /// hour, re-plan next hour. Bypasses the budget-allocation layer —
    /// the joint LP *is* the allocation.
    Horizon {
        /// Forecast window length, in hours (must be at least 1).
        lookahead: usize,
    },
    /// The intermittency-aware burst policy (Approxify-style): at every
    /// execution epoch pick the operating point that maximizes the
    /// expected completed work of the *remaining charge burst* — epochs
    /// until the capacitor hits the brownout threshold, each taxed with
    /// the checkpoint cost. Only meaningful on scenarios with an
    /// [`IntermittentConfig`](crate::IntermittentConfig); the scalar
    /// hourly engine rejects it.
    Intermittent,
}

impl Policy {
    /// Short name for reports: borrowed `"REAP"` / `"INT"`, or `"DPk"` /
    /// `"MPCh"` formatted on demand (reports store the [`Policy`]
    /// itself, not a name).
    #[must_use]
    pub fn name(self) -> Cow<'static, str> {
        match self {
            Policy::Reap => Cow::Borrowed("REAP"),
            Policy::Static(id) => Cow::Owned(format!("DP{id}")),
            Policy::Horizon { lookahead } => Cow::Owned(format!("MPC{lookahead}")),
            Policy::Intermittent => Cow::Borrowed("INT"),
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Reap => f.write_str("REAP"),
            Policy::Static(id) => write!(f, "DP{id}"),
            Policy::Horizon { lookahead } => write!(f, "MPC{lookahead}"),
            Policy::Intermittent => f.write_str("INT"),
        }
    }
}

/// Precomputes the policy-independent budget sequence of the open-loop
/// protocol: the allocator runs against a *virtual* battery that assumes
/// every granted budget is fully spent, so the resulting sequence depends
/// only on the harvest trace.
///
/// Because the sequence is policy-independent, callers running several
/// policies over one scenario ([`Scenario::run_all`],
/// [`run_matrix`](crate::run_matrix)) compute it once and share it.
pub(crate) fn open_loop_budgets(scenario: &Scenario) -> Vec<Energy> {
    let mut allocator = scenario.allocator.instantiate();
    let mut virtual_battery = scenario.battery.clone();
    let floor = scenario.problem.min_budget();
    let mut budgets = Vec::with_capacity(scenario.trace.len_hours());
    let mut harvested_last_hour = Energy::ZERO;
    for (i, harvested) in scenario.trace.iter().enumerate() {
        let hour = (i % 24) as u32;
        let proposed = allocator.allocate(hour, harvested_last_hour, &virtual_battery);
        // Grant no more than the virtual supply could actually deliver.
        // The floor clamp counts the hour's own harvest, exactly like the
        // grant cap above: execution banks the incoming harvest before
        // (virtually) spending the budget, so the monitoring floor is
        // reachable whenever battery *plus* same-hour harvest covers it —
        // a dark battery must not deny the floor in a bright hour.
        let budget = proposed
            .min(virtual_battery.deliverable() + harvested)
            .max(floor.min(virtual_battery.deliverable() + harvested));
        // Virtual accounting: the whole budget is spent, the harvest is
        // banked.
        virtual_battery.charge(harvested);
        virtual_battery.discharge(budget);
        budgets.push(budget);
        harvested_last_hour = harvested;
    }
    budgets
}

/// The per-hour planning pipeline, extracted so the scalar hourly loop
/// below and the event-driven core ([`crate::clock`]) run *the same*
/// arithmetic: budget proposal (precomputed open-loop sequence or live
/// allocator), floor clamp, and policy planning (frontier / static
/// duty-cycle / receding-horizon MPC).
///
/// Bit-for-bit equivalence between the two engines at dt = 1 h rests on
/// both calling [`HourPlanner::plan_hour`] then [`HourPlanner::end_hour`]
/// exactly once per hour, in order — the differential harness in
/// `tests/dt_equivalence.rs` pins that property.
pub(crate) struct HourPlanner<'s> {
    scenario: &'s Scenario,
    policy: Policy,
    controller: ReapController,
    allocator: Box<dyn reap_harvest::BudgetAllocator>,
    mpc: Option<(
        RecedingHorizonController,
        Box<dyn reap_harvest::HarvestForecaster>,
    )>,
    precomputed: Option<Cow<'s, [Energy]>>,
    floor: Energy,
    total_hours: usize,
    harvested_last_hour: Energy,
}

impl<'s> HourPlanner<'s> {
    /// Builds the planning pipeline for one `(scenario, policy)` run.
    ///
    /// Rejects [`Policy::Intermittent`]: burst planning has no hourly
    /// budget layer — the event core handles it directly.
    pub(crate) fn new(
        scenario: &'s Scenario,
        policy: Policy,
        shared_budgets: Option<&'s [Energy]>,
    ) -> Result<Self, SimError> {
        if policy == Policy::Intermittent {
            return Err(SimError::InvalidParameter(
                "Policy::Intermittent has no hourly budget pipeline; it requires a \
                 scenario with an IntermittentConfig (Scenario::builder().intermittent(..))"
                    .to_owned(),
            ));
        }
        // The frontier solver: one precomputed frontier serves all 720
        // hourly plans of a month-long trace.
        let controller =
            ReapController::with_solver(scenario.problem.clone(), SolverKind::Frontier);
        let allocator = scenario.allocator.instantiate();
        let floor = scenario.problem.min_budget();
        // The MPC policy replaces the budget layer entirely: a forecaster
        // feeds a receding-horizon controller that plans the window
        // jointly.
        let mpc = match policy {
            Policy::Horizon { lookahead } => Some((
                RecedingHorizonController::new(scenario.problem.clone(), lookahead)?,
                scenario.forecaster.instantiate(&scenario.trace),
            )),
            _ => None,
        };
        let precomputed: Option<Cow<'s, [Energy]>> =
            match (&mpc, shared_budgets, scenario.budget_mode) {
                (Some(_), _, _) => None,
                (None, Some(budgets), crate::BudgetMode::OpenLoop) => Some(Cow::Borrowed(budgets)),
                (None, None, crate::BudgetMode::OpenLoop) => {
                    Some(Cow::Owned(open_loop_budgets(scenario)))
                }
                (None, _, crate::BudgetMode::ClosedLoop) => None,
            };
        Ok(HourPlanner {
            scenario,
            policy,
            controller,
            allocator,
            mpc,
            precomputed,
            floor,
            total_hours: scenario.trace.len_hours(),
            harvested_last_hour: Energy::ZERO,
        })
    }

    /// Budget-and-plan for trace hour `i`: the allocation layer proposes
    /// a budget first — open-loop from the precomputed,
    /// policy-independent sequence, closed-loop from this run's own
    /// battery trajectory — and the policy plans against it. Optimistic
    /// proposals are fine — execution browns out when the actual supply
    /// falls short — but the floor must stay reachable whenever the
    /// battery (or the hour's own harvest, which execution draws first)
    /// can still provide it, so the monitoring circuitry is kept alive
    /// through dark hours. The MPC policy instead plans its whole
    /// forecast window jointly and reports the planned energy as the
    /// budget.
    pub(crate) fn plan_hour(
        &mut self,
        i: usize,
        harvested: Energy,
        battery: &reap_harvest::Battery,
    ) -> Result<(Energy, Schedule), SimError> {
        let hour = (i % 24) as u32;
        match (self.policy, &mut self.mpc) {
            (Policy::Horizon { lookahead }, Some((mpc_controller, forecaster))) => {
                let window = lookahead.min(self.total_hours - i);
                let forecast = forecaster.forecast(i, window);
                let planned =
                    mpc_controller.plan(&forecast, battery.level(), battery.capacity())?;
                Ok((planned.energy(), planned))
            }
            _ => {
                let budget = match &self.precomputed {
                    Some(budgets) => budgets[i],
                    None => {
                        let proposed =
                            self.allocator
                                .allocate(hour, self.harvested_last_hour, battery);
                        proposed.max(self.floor.min(battery.deliverable() + harvested))
                    }
                };
                let planned = match self.policy {
                    Policy::Reap => self.controller.plan(budget)?,
                    Policy::Static(id) => {
                        let effective = budget.max(self.floor);
                        static_schedule(&self.scenario.problem, id, effective)?
                    }
                    Policy::Horizon { .. } | Policy::Intermittent => {
                        unreachable!("handled above / rejected in new()")
                    }
                };
                Ok((budget, planned))
            }
        }
    }

    /// Closes trace hour `i`: the forecaster observes the realized
    /// harvest and the allocator's last-hour memory advances. Call after
    /// the hour's record is final, exactly once per completed hour.
    pub(crate) fn end_hour(&mut self, i: usize, harvested: Energy) {
        if let Some((_, forecaster)) = &mut self.mpc {
            forecaster.observe(i, harvested);
        }
        self.harvested_last_hour = harvested;
    }

    /// The name of the energy layer that actually drove the run: the
    /// budget allocator for the myopic policies, the forecaster for the
    /// MPC (which bypasses the allocator entirely).
    pub(crate) fn energy_layer(&self) -> &'static str {
        match &self.mpc {
            Some((_, forecaster)) => forecaster.name(),
            None => self.allocator.name(),
        }
    }
}

/// Executes one step against a battery: draw from the incoming harvest
/// first, then the battery; brown out proportionally if supply falls
/// short. Returns the realized fraction of `needed` in `[0, 1]`.
///
/// Shared verbatim between the scalar hourly loop and the event core's
/// battery mode — the arithmetic here *is* the execution semantics both
/// engines are pinned to.
pub(crate) fn execute_step(
    battery: &mut reap_harvest::Battery,
    harvested: Energy,
    needed: Energy,
) -> f64 {
    let mut realized_fraction = 1.0;
    if harvested >= needed {
        battery.charge(harvested - needed);
    } else {
        let deficit = needed - harvested;
        let delivered = battery.discharge(deficit);
        if delivered.joules() + 1e-12 < deficit.joules() {
            let supplied = harvested + delivered;
            realized_fraction = if needed.joules() > 0.0 {
                (supplied / needed).clamp(0.0, 1.0)
            } else {
                1.0
            };
        }
    }
    realized_fraction
}

/// Runs `scenario` under `policy`, optionally against an open-loop budget
/// sequence the caller already computed (`None` derives budgets from the
/// scenario's own mode, exactly as before).
///
/// Scenarios configured for the event core (sub-hour `dt_seconds` or an
/// [`IntermittentConfig`](crate::IntermittentConfig)) are routed to
/// [`crate::clock`]; everything else takes the scalar hourly loop below.
pub(crate) fn run_with_budgets(
    scenario: &Scenario,
    policy: Policy,
    shared_budgets: Option<&[Energy]>,
) -> Result<SimReport, SimError> {
    if scenario.uses_event_core() {
        return crate::clock::run_event_driven_with_budgets(scenario, policy, shared_budgets)
            .map(|run| run.report);
    }
    // Fail fast on unknown static ids.
    if let Policy::Static(id) = policy {
        scenario.problem.point(id)?;
    }
    let mut planner = HourPlanner::new(scenario, policy, shared_budgets)?;
    let mut battery = scenario.battery.clone();
    let total_hours = scenario.trace.len_hours();
    let mut hours = Vec::with_capacity(total_hours);

    for (i, harvested) in scenario.trace.iter().enumerate() {
        let day = (i / 24) as u32;
        let hour = (i % 24) as u32;
        let (budget, planned) = planner.plan_hour(i, harvested, &battery)?;
        let needed = planned.energy();
        let realized_fraction = execute_step(&mut battery, harvested, needed);
        hours.push(HourRecord {
            day,
            hour,
            harvested,
            budget,
            planned,
            realized_fraction,
            battery_level: battery.level(),
        });
        planner.end_hour(i, harvested);
    }

    let energy_layer = planner.energy_layer();
    Ok(SimReport::new(
        policy,
        energy_layer,
        scenario.problem.alpha(),
        hours,
    ))
}

/// Runs `scenario` under `policy` with budgets derived from the
/// scenario's own mode.
pub(crate) fn run(scenario: &Scenario, policy: Policy) -> Result<SimReport, SimError> {
    run_with_budgets(scenario, policy, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocatorKind, Scenario};
    use reap_core::OperatingPoint;
    use reap_harvest::{Battery, HarvestTrace};
    use reap_units::Power;

    fn paper_points() -> Vec<OperatingPoint> {
        let specs = [
            (1u8, 0.94, 2.76),
            (2, 0.93, 2.30),
            (3, 0.92, 1.82),
            (4, 0.90, 1.64),
            (5, 0.76, 1.20),
        ];
        specs
            .iter()
            .map(|&(id, a, mw)| {
                OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw)).unwrap()
            })
            .collect()
    }

    fn scenario(seed: u64) -> Scenario {
        Scenario::builder(HarvestTrace::september_like(seed))
            .points(paper_points())
            .build()
            .unwrap()
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::Reap.name(), "REAP");
        assert_eq!(Policy::Static(3).name(), "DP3");
        assert_eq!(Policy::Horizon { lookahead: 24 }.name(), "MPC24");
        assert_eq!(Policy::Horizon { lookahead: 4 }.to_string(), "MPC4");
        assert_eq!(Policy::Intermittent.name(), "INT");
        assert_eq!(Policy::Intermittent.to_string(), "INT");
    }

    /// A 3-day periodic trace (2 J for hours 6..=17, dark otherwise) on a
    /// loss-free battery: the setting where MPC-with-perfect-forecast
    /// must reproduce the joint-LP optimum exactly.
    fn periodic_72h() -> HarvestTrace {
        let hourly: Vec<reap_units::Energy> = (0..72)
            .map(|t| {
                let h = t % 24;
                reap_units::Energy::from_joules(if (6..=17).contains(&h) { 2.0 } else { 0.0 })
            })
            .collect();
        HarvestTrace::new(244, hourly).unwrap()
    }

    fn lossless_battery() -> Battery {
        Battery::new(
            reap_units::Energy::from_joules(60.0),
            reap_units::Energy::from_joules(30.0),
            1.0,
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn mpc_with_perfect_forecast_matches_the_joint_lp_optimum() {
        // The tentpole acceptance bar: Policy::Horizon { lookahead: 24 }
        // driven by the zero-error oracle realizes, hour by hour, the
        // same total objective as the offline joint LP over the whole
        // 72-hour trace — receding-horizon execution loses nothing when
        // the forecast is exact.
        let trace = periodic_72h();
        let scenario = Scenario::builder(trace.clone())
            .points(paper_points())
            .battery(lossless_battery())
            .forecaster(crate::ForecasterKind::Oracle {
                rel_error: 0.0,
                seed: 0,
            })
            .build()
            .unwrap();
        let report = scenario.run(Policy::Horizon { lookahead: 24 }).unwrap();
        // Perfect forecast + loss-free battery: every plan executes.
        assert_eq!(report.brownout_hours(), 0);

        let forecast: Vec<reap_units::Energy> = trace.iter().collect();
        let joint = reap_core::plan_horizon(
            scenario.problem(),
            &forecast,
            reap_units::Energy::from_joules(30.0),
            reap_units::Energy::from_joules(60.0),
        )
        .unwrap();
        let mpc_total = report.total_objective(1.0);
        let joint_total = joint.total_objective(1.0);
        assert!(
            (mpc_total - joint_total).abs() < 1e-6,
            "MPC realized {mpc_total} vs joint optimum {joint_total}"
        );
    }

    #[test]
    fn mpc_beats_the_myopic_policies_on_the_solar_month() {
        // Even against REAP with the shared open-loop budget protocol,
        // lookahead over a perfect forecast banks noon surpluses for the
        // night and wins on total objective.
        let trace = HarvestTrace::september_like(31);
        let build = |forecaster| {
            Scenario::builder(trace.clone())
                .points(paper_points())
                .forecaster(forecaster)
                .build()
                .unwrap()
        };
        let oracle = crate::ForecasterKind::Oracle {
            rel_error: 0.0,
            seed: 0,
        };
        let mpc = build(oracle)
            .run(Policy::Horizon { lookahead: 24 })
            .unwrap();
        let reap = build(oracle).run(Policy::Reap).unwrap();
        assert!(
            mpc.total_objective(1.0) > reap.total_objective(1.0),
            "MPC24 {} vs REAP {}",
            mpc.total_objective(1.0),
            reap.total_objective(1.0)
        );
    }

    #[test]
    fn noisy_mpc_still_beats_closed_loop_reap_on_indoor_pv() {
        // Forecast-error robustness acceptance bar: at ±20% hourly
        // forecast error the receding-horizon policy still beats REAP's
        // closed-loop mean accuracy on the indoor-photovoltaic scenario.
        use reap_harvest::SourceKind;
        let trace = SourceKind::IndoorPhotovoltaic
            .instantiate(7)
            .generate(244, 10)
            .unwrap();
        let mpc = Scenario::builder(trace.clone())
            .points(paper_points())
            .forecaster(crate::ForecasterKind::Oracle {
                rel_error: 0.2,
                seed: 11,
            })
            .build()
            .unwrap()
            .run(Policy::Horizon { lookahead: 24 })
            .unwrap();
        let reap = Scenario::builder(trace)
            .points(paper_points())
            .budget_mode(crate::BudgetMode::ClosedLoop)
            .build()
            .unwrap()
            .run(Policy::Reap)
            .unwrap();
        assert!(
            mpc.mean_accuracy() > reap.mean_accuracy(),
            "noisy MPC24 accuracy {} vs closed-loop REAP {}",
            mpc.mean_accuracy(),
            reap.mean_accuracy()
        );
    }

    #[test]
    fn mpc_with_ewma_forecaster_runs_and_stays_sane() {
        // The deployable configuration: causal EWMA forecasts only.
        let report = Scenario::builder(HarvestTrace::september_like(17))
            .points(paper_points())
            .build()
            .unwrap()
            .run(Policy::Horizon { lookahead: 12 })
            .unwrap();
        assert_eq!(report.hours().len(), 720);
        assert_eq!(report.policy_name(), "MPC12");
        for h in report.hours() {
            assert!((0.0..=1.0).contains(&h.realized_fraction));
            assert!(!h.battery_level.is_negative());
        }
        // It must actually do work, not hide behind the fallback.
        assert!(report.total_active_time().hours() > 24.0);
    }

    #[test]
    fn mpc_lookahead_one_degenerates_gracefully() {
        let report = Scenario::builder(HarvestTrace::september_like(19))
            .points(paper_points())
            .forecaster(crate::ForecasterKind::Oracle {
                rel_error: 0.0,
                seed: 0,
            })
            .build()
            .unwrap()
            .run(Policy::Horizon { lookahead: 1 })
            .unwrap();
        assert_eq!(report.hours().len(), 720);
        assert_eq!(report.policy_name(), "MPC1");
    }

    #[test]
    fn mpc_rejects_zero_lookahead() {
        let err = scenario(23)
            .run(Policy::Horizon { lookahead: 0 })
            .unwrap_err();
        assert!(matches!(err, SimError::Core(_)));
    }

    #[test]
    fn floor_stays_reachable_on_dark_battery_bright_harvest() {
        // Regression for the open-loop floor clamp: an empty battery in a
        // bright hour must not deny the monitoring floor — the hour's own
        // harvest is banked before the budget is (virtually) spent.
        let hourly: Vec<reap_units::Energy> = (0..24)
            .map(|h| reap_units::Energy::from_joules(if h >= 6 { 5.0 } else { 0.0 }))
            .collect();
        let trace = HarvestTrace::new(244, hourly).unwrap();
        let dead_battery = Battery::new(
            reap_units::Energy::from_joules(60.0),
            reap_units::Energy::ZERO,
            0.95,
            0.95,
        )
        .unwrap();
        let scenario = Scenario::builder(trace)
            .points(paper_points())
            .battery(dead_battery)
            .build()
            .unwrap();
        let floor = scenario.problem().min_budget();
        let budgets = open_loop_budgets(&scenario);
        for (h, &b) in budgets.iter().enumerate().skip(6) {
            assert!(
                b >= floor,
                "hour {h}: budget {b} denies the floor {floor} despite 5 J harvest"
            );
        }
        // Closed loop honors the same reachability rule.
        let closed = Scenario::builder(scenario.trace().clone())
            .points(paper_points())
            .battery(
                Battery::new(
                    reap_units::Energy::from_joules(60.0),
                    reap_units::Energy::ZERO,
                    0.95,
                    0.95,
                )
                .unwrap(),
            )
            .budget_mode(crate::BudgetMode::ClosedLoop)
            .build()
            .unwrap()
            .run(Policy::Reap)
            .unwrap();
        for h in closed.hours().iter().skip(6) {
            assert!(
                h.budget >= floor,
                "closed-loop hour {}: budget {} denies the floor",
                h.hour,
                h.budget
            );
        }
    }

    #[test]
    fn unknown_static_id_fails_fast() {
        let err = scenario(1).run(Policy::Static(77)).unwrap_err();
        assert!(matches!(err, SimError::Core(_)));
    }

    #[test]
    fn month_simulation_produces_720_hours() {
        let report = scenario(1).run(Policy::Reap).unwrap();
        assert_eq!(report.hours().len(), 720);
        assert_eq!(report.policy_name(), "REAP");
        assert_eq!(report.allocator_name(), "ewma");
    }

    #[test]
    fn energy_is_conserved_every_hour() {
        // battery(t) <= battery(t-1) + harvested (charging can only come
        // from harvest; consumption only lowers it).
        let report = scenario(2).run(Policy::Reap).unwrap();
        let initial = Battery::small_wearable().level();
        let mut prev = initial;
        for h in report.hours() {
            assert!(
                h.battery_level.joules() <= prev.joules() + h.harvested.joules() + 1e-9,
                "battery grew out of thin air on day {} hour {}",
                h.day,
                h.hour
            );
            prev = h.battery_level;
        }
    }

    #[test]
    fn realized_fraction_is_sane() {
        let report = scenario(3).run(Policy::Static(1)).unwrap();
        for h in report.hours() {
            assert!((0.0..=1.0).contains(&h.realized_fraction));
        }
    }

    #[test]
    fn reap_beats_static_dp1_over_a_month() {
        let s = scenario(4);
        let reap = s.run(Policy::Reap).unwrap();
        let dp1 = s.run(Policy::Static(1)).unwrap();
        assert!(
            reap.total_objective(1.0) > dp1.total_objective(1.0),
            "REAP {} vs DP1 {}",
            reap.total_objective(1.0),
            dp1.total_objective(1.0)
        );
        // And REAP's active time beats DP1's substantially (paper: +66%).
        assert!(
            reap.total_active_time().hours() > 1.2 * dp1.total_active_time().hours(),
            "active {} vs {}",
            reap.total_active_time(),
            dp1.total_active_time()
        );
    }

    #[test]
    fn allocator_choice_changes_the_outcome() {
        let base = scenario(5);
        let greedy = Scenario::builder(HarvestTrace::september_like(5))
            .points(paper_points())
            .allocator(AllocatorKind::Greedy)
            .build()
            .unwrap();
        let a = base.run(Policy::Reap).unwrap();
        let b = greedy.run(Policy::Reap).unwrap();
        assert_ne!(
            a.total_objective(1.0),
            b.total_objective(1.0),
            "allocators should not behave identically"
        );
    }

    #[test]
    fn determinism() {
        let a = scenario(6).run(Policy::Reap).unwrap();
        let b = scenario(6).run(Policy::Reap).unwrap();
        assert_eq!(a.total_objective(1.0), b.total_objective(1.0));
        assert_eq!(a.hours().len(), b.hours().len());
    }

    #[test]
    fn open_loop_budgets_are_policy_independent() {
        let s = scenario(7);
        let reap = s.run(Policy::Reap).unwrap();
        let dp5 = s.run(Policy::Static(5)).unwrap();
        for (a, b) in reap.hours().iter().zip(dp5.hours()) {
            assert_eq!(a.budget, b.budget, "day {} hour {}", a.day, a.hour);
        }
    }

    #[test]
    fn open_loop_reap_dominates_statics_every_hour() {
        // With identical budgets, LP optimality makes REAP's planned
        // objective at least every static's, hour by hour (the paper's
        // "consistently outperforms or matches").
        let s = scenario(8);
        let reap = s.run(Policy::Reap).unwrap();
        for id in [1u8, 3, 5] {
            let stat = s.run(Policy::Static(id)).unwrap();
            for (a, b) in reap.hours().iter().zip(stat.hours()) {
                assert!(
                    a.planned.objective(1.0) >= b.planned.objective(1.0) - 1e-9,
                    "REAP lost to DP{id} on day {} hour {}",
                    a.day,
                    a.hour
                );
            }
        }
    }

    #[test]
    fn closed_loop_mode_differs_from_open_loop() {
        use crate::BudgetMode;
        let open = scenario(9);
        let closed = Scenario::builder(HarvestTrace::september_like(9))
            .points(paper_points())
            .budget_mode(BudgetMode::ClosedLoop)
            .build()
            .unwrap();
        let a = open.run(Policy::Reap).unwrap();
        let b = closed.run(Policy::Reap).unwrap();
        assert_ne!(a.total_objective(1.0), b.total_objective(1.0));
    }
}
