//! Empirical recognition sampling.
//!
//! [`SimReport`](crate::SimReport) metrics are *expected* values: an hour
//! planned at design points with accuracies `a_i` contributes
//! `sum a_i t_i / TP`. A real device classifies a finite number of windows
//! and gets each one right or wrong; this module samples that process
//! (one Bernoulli draw per classified window) so the dispersion of
//! realized accuracy around its expectation can be studied without running
//! the full classifier in the loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{HourRecord, SimReport};

/// Result of sampling one hour's recognitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HourRecognitions {
    /// Windows the device classified during the hour.
    pub classified: u64,
    /// Windows classified correctly.
    pub correct: u64,
}

impl HourRecognitions {
    /// Empirical accuracy over the classified windows; `None` when the
    /// device was off all hour (no windows to classify).
    #[must_use]
    pub fn accuracy(&self) -> Option<f64> {
        if self.classified == 0 {
            None
        } else {
            Some(self.correct as f64 / self.classified as f64)
        }
    }
}

/// Samples the recognitions of one simulated hour: each design point
/// classifies `floor(t_i / window)` windows, each correct with
/// probability `a_i`, scaled by the hour's realized fraction.
pub fn sample_hour<R: Rng + ?Sized>(record: &HourRecord, rng: &mut R) -> HourRecognitions {
    let window_s = reap_data::WINDOW_SECONDS;
    let mut classified = 0u64;
    let mut correct = 0u64;
    for allocation in record.planned.allocations() {
        let realized_seconds = allocation.duration.seconds() * record.realized_fraction;
        let windows = (realized_seconds / window_s).floor() as u64;
        let accuracy = allocation.point.accuracy();
        for _ in 0..windows {
            classified += 1;
            if rng.gen::<f64>() < accuracy {
                correct += 1;
            }
        }
    }
    HourRecognitions {
        classified,
        correct,
    }
}

/// Samples a whole report, returning the aggregate empirical accuracy
/// (`None` if the device never classified a window).
#[must_use]
pub fn sample_report(report: &SimReport, seed: u64) -> Option<f64> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut classified = 0u64;
    let mut correct = 0u64;
    for record in report.hours() {
        let h = sample_hour(record, &mut rng);
        classified += h.classified;
        correct += h.correct;
    }
    if classified == 0 {
        None
    } else {
        Some(correct as f64 / classified as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Policy, Scenario};
    use reap_harvest::HarvestTrace;

    fn report() -> SimReport {
        Scenario::builder(HarvestTrace::september_like(4))
            .points(reap_device::paper_table2_operating_points())
            .build()
            .expect("valid")
            .run(Policy::Reap)
            .expect("runs")
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let r = report();
        assert_eq!(sample_report(&r, 1), sample_report(&r, 1));
        assert_ne!(sample_report(&r, 1), sample_report(&r, 2));
    }

    #[test]
    fn empirical_accuracy_tracks_expected_accuracy() {
        // Over a month (hundreds of thousands of windows) the Bernoulli
        // mean must sit very close to the schedule-weighted accuracy of
        // the classified windows.
        let r = report();
        let sampled = sample_report(&r, 7).expect("device ran");
        // Expected accuracy over *classified* windows: weight each hour's
        // point accuracies by realized classified time.
        let mut num = 0.0;
        let mut den = 0.0;
        for h in r.hours() {
            for a in h.planned.allocations() {
                let t = a.duration.seconds() * h.realized_fraction;
                num += a.point.accuracy() * t;
                den += t;
            }
        }
        let expected = num / den;
        assert!(
            (sampled - expected).abs() < 0.01,
            "sampled {sampled} vs expected {expected}"
        );
    }

    #[test]
    fn off_hours_classify_nothing() {
        let r = report();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for h in r.hours() {
            let rec = sample_hour(h, &mut rng);
            if h.planned.allocations().is_empty() {
                assert_eq!(rec.classified, 0);
                assert_eq!(rec.accuracy(), None);
            } else {
                assert!(rec.correct <= rec.classified);
            }
        }
    }

    #[test]
    fn window_counts_match_active_time() {
        let r = report();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for h in r.hours().iter().take(100) {
            let rec = sample_hour(h, &mut rng);
            let max_windows = (h.planned.active_time().seconds() * h.realized_fraction
                / reap_data::WINDOW_SECONDS) as u64;
            assert!(rec.classified <= max_windows + 2);
        }
    }
}
