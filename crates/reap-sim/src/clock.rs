//! The event-driven, variable-dt simulation core.
//!
//! The scalar engine (`crate::engine`) advances one fixed hour at a
//! time. This module generalizes that tick: the simulation advances on a
//! binary heap of timestamped events — harvest edges (the hour-granular
//! trace is resampled to the execution epoch `dt`), scheduled decisions,
//! capacitor threshold crossings (wake-ups), forced power failures and
//! restores — and executes in epochs of `dt` seconds (`dt` divides an
//! hour evenly; `dt = 3600` is the scalar engine's granularity).
//!
//! Two storage modes share the core:
//!
//! * **Battery mode** (no [`IntermittentConfig`]): the scenario's
//!   [`Battery`] executes each epoch through the *same* `execute_step`
//!   helper as the scalar engine, and planning goes through the same
//!   `HourPlanner` (both private to the crate). At `dt = 3600` the two
//!   engines therefore run identical arithmetic and produce bit-for-bit
//!   identical reports — the differential harness in
//!   `tests/dt_equivalence.rs` pins that.
//! * **Intermittent mode** ([`IntermittentConfig`]): a capacitor-scale
//!   store replaces the battery. The node lives in charge bursts:
//!   **off → charging → on → brownout → off**. While off, charging is
//!   advanced in closed form (piecewise-linear within each trace hour)
//!   and the turn-on threshold crossing is computed analytically — one
//!   event per off-hour instead of thousands of idle ticks. On turn-on
//!   the node pays a calibrated restore tax; every completed epoch pays
//!   a checkpoint tax and *commits* its work; a brownout mid-epoch
//!   loses the uncommitted (volatile) epoch and kills the node until
//!   the store recharges past the turn-on threshold.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use reap_core::{static_schedule, Schedule};
use reap_harvest::{Battery, Capacitor};
use reap_units::Energy;

use crate::engine::{execute_step, HourPlanner, Policy};
use crate::report::{HourRecord, SimReport};
use crate::{Scenario, SimError};

/// Seconds per trace hour.
const HOUR_S: u64 = 3600;

/// Batteryless intermittent operation: the capacitor, the
/// checkpoint/restore energy taxes, and (optionally) a schedule of
/// forced power failures.
#[derive(Debug, Clone, PartialEq)]
pub struct IntermittentConfig {
    capacitor: Capacitor,
    checkpoint_cost: Energy,
    restore_cost: Energy,
    /// Forced outage windows `[start_s, end_s)`, sorted, non-overlapping.
    failures: Vec<(u64, u64)>,
}

impl IntermittentConfig {
    /// The default wearable-mote configuration: the
    /// [`Capacitor::supercap_wearable`] store with a 2 mJ checkpoint and
    /// a 5 mJ restore tax (a few milliseconds of MCU + NVM traffic at
    /// active power).
    #[must_use]
    pub fn wearable_default() -> IntermittentConfig {
        IntermittentConfig::new(
            Capacitor::supercap_wearable(),
            Energy::from_joules(0.002),
            Energy::from_joules(0.005),
        )
        .expect("constants are valid")
    }

    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] when a tax is negative or
    /// non-finite, or when the restore tax eats the whole hysteresis
    /// band (`turn_on_energy - restore_cost` must stay strictly above
    /// `brownout_energy`, otherwise the node dies during every boot).
    pub fn new(
        capacitor: Capacitor,
        checkpoint_cost: Energy,
        restore_cost: Energy,
    ) -> Result<IntermittentConfig, SimError> {
        for (name, tax) in [("checkpoint", checkpoint_cost), ("restore", restore_cost)] {
            if !tax.is_finite() || tax.is_negative() {
                return Err(SimError::InvalidParameter(format!(
                    "{name} cost {tax} must be finite and non-negative"
                )));
            }
        }
        if capacitor.turn_on_energy() - restore_cost <= capacitor.brownout_energy() {
            return Err(SimError::InvalidParameter(format!(
                "restore cost {restore_cost} leaves no energy above the brownout \
                 threshold: turn-on {} - restore must exceed brownout {}",
                capacitor.turn_on_energy(),
                capacitor.brownout_energy()
            )));
        }
        Ok(IntermittentConfig {
            capacitor,
            checkpoint_cost,
            restore_cost,
            failures: Vec::new(),
        })
    }

    /// Adds forced power-failure windows `[start_s, end_s)`: the node is
    /// killed at `start_s` (losing its volatile window) and may not turn
    /// back on before `end_s`, though harvest keeps charging the store
    /// throughout.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] when a window is empty or the
    /// windows are not sorted and non-overlapping.
    pub fn with_failures(
        mut self,
        failures: Vec<(u64, u64)>,
    ) -> Result<IntermittentConfig, SimError> {
        let mut prev_end = 0u64;
        for &(start, end) in &failures {
            if start >= end {
                return Err(SimError::InvalidParameter(format!(
                    "failure window [{start}, {end}) is empty"
                )));
            }
            if start < prev_end {
                return Err(SimError::InvalidParameter(format!(
                    "failure window [{start}, {end}) overlaps or is out of order \
                     (previous window ends at {prev_end})"
                )));
            }
            prev_end = end;
        }
        self.failures = failures;
        Ok(self)
    }

    /// The capacitor template (runs clone it; the config's copy keeps
    /// its configured initial charge).
    #[must_use]
    pub fn capacitor(&self) -> &Capacitor {
        &self.capacitor
    }

    /// Energy drawn per committed epoch to persist the volatile state.
    #[must_use]
    pub fn checkpoint_cost(&self) -> Energy {
        self.checkpoint_cost
    }

    /// Energy drawn on every turn-on to reload the last checkpoint.
    #[must_use]
    pub fn restore_cost(&self) -> Energy {
        self.restore_cost
    }

    /// The forced outage windows.
    #[must_use]
    pub fn failures(&self) -> &[(u64, u64)] {
        &self.failures
    }
}

/// One entry of the (optional) event log: what the core processed and
/// when. Enabled by [`ScenarioBuilder::trace_events`](crate::ScenarioBuilder::trace_events);
/// crash-point harnesses replay failures at every logged timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Simulation time of the event, in seconds from trace start.
    pub at_s: u64,
    /// Event tag: `"harvest-edge"`, `"decision"`, `"epoch"`, `"wake"`,
    /// `"failure"`, `"restore"`, or `"end"`.
    pub kind: &'static str,
}

/// Counters and the exact energy ledger of one event-core run.
///
/// The ledger fields record every mutation of the energy store in
/// intermittent mode, so conservation is checkable to float rounding:
/// [`ClockStats::ledger_drift`] must stay within `1e-9` J.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClockStats {
    /// Events popped from the heap.
    pub events: u64,
    /// Execution epochs whose work was committed (checkpoint completed).
    pub epochs_committed: u64,
    /// Epochs whose volatile work was lost to a brownout or failure.
    pub epochs_lost: u64,
    /// Turn-ons (charge bursts started), each paying the restore tax.
    pub bursts: u64,
    /// Deaths from the store crossing the brownout threshold.
    pub brownouts: u64,
    /// Forced (scheduled) power failures applied.
    pub forced_failures: u64,
    /// Voluntary power-downs: the burst policy found no operating point
    /// able to complete even one epoch, so the node slept to bank
    /// energy instead of leaking it away.
    pub sleeps: u64,
    /// Objective actually committed (sum of per-epoch plan objective
    /// shares; volatile losses excluded).
    pub committed_objective: f64,
    /// Active seconds actually committed.
    pub committed_active_s: f64,
    /// Harvest offered by the trace over the run, in joules.
    pub harvest_offered_j: f64,
    /// Energy that entered the store (post-efficiency, post-spill), J.
    pub stored_j: f64,
    /// Harvest that could not be stored (full store), input-side J.
    pub spilled_j: f64,
    /// Energy drawn from the store by execution, J.
    pub consumed_j: f64,
    /// Energy lost to capacitor leakage, J.
    pub leaked_j: f64,
    /// Energy drawn by checkpoint taxes, J.
    pub checkpoint_j: f64,
    /// Energy drawn by restore taxes, J.
    pub restore_j: f64,
    /// Store level at the start of the run, J.
    pub initial_store_j: f64,
    /// Store level at the end of the run, J.
    pub final_store_j: f64,
}

impl ClockStats {
    /// The ledger imbalance
    /// `initial + stored - consumed - leaked - checkpoint - restore - final`,
    /// in joules. Exactly zero up to float rounding when every store
    /// mutation was accounted; the conservation proptests require
    /// `|drift| <= 1e-9`.
    #[must_use]
    pub fn ledger_drift(&self) -> f64 {
        self.initial_store_j + self.stored_j
            - self.consumed_j
            - self.leaked_j
            - self.checkpoint_j
            - self.restore_j
            - self.final_store_j
    }
}

/// An event-core run: the hour-by-hour [`SimReport`] (same shape the
/// scalar engine produces), the core's [`ClockStats`], and — when
/// [`ScenarioBuilder::trace_events`](crate::ScenarioBuilder::trace_events)
/// is set — the processed event log.
#[derive(Debug, Clone)]
pub struct VdtRun {
    /// The hour-by-hour report (bit-identical to the scalar engine's at
    /// `dt = 3600` in battery mode).
    pub report: SimReport,
    /// Event counters and the energy ledger.
    pub stats: ClockStats,
    /// The processed events, oldest first (empty unless tracing is on).
    pub events: Vec<EventRecord>,
}

/// Event kinds, with the tie-break priority at equal timestamps encoded
/// separately (restores come back before the world changes, harvest
/// edges before decisions, decisions before epochs, failures *before*
/// the epoch at the same timestamp so a kill at an epoch boundary
/// pre-empts that epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A forced outage ends.
    Restore,
    /// Trace hour `h` begins (and hour `h - 1` is finalized).
    HarvestEdge(u32),
    /// A forced outage begins.
    Failure,
    /// The store crossed (or may have crossed) the turn-on threshold.
    Wake,
    /// Plan trace hour `h` (battery mode).
    Decision(u32),
    /// Execute the epoch starting at this timestamp.
    Epoch,
    /// Trace end.
    End,
}

impl EventKind {
    fn priority(self) -> u8 {
        match self {
            EventKind::Restore => 0,
            EventKind::HarvestEdge(_) => 1,
            EventKind::Failure => 2,
            EventKind::Wake => 3,
            EventKind::Decision(_) => 4,
            EventKind::Epoch => 5,
            EventKind::End => 6,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            EventKind::Restore => "restore",
            EventKind::HarvestEdge(_) => "harvest-edge",
            EventKind::Failure => "failure",
            EventKind::Wake => "wake",
            EventKind::Decision(_) => "decision",
            EventKind::Epoch => "epoch",
            EventKind::End => "end",
        }
    }
}

/// Heap entry: ordered by `(time, kind priority, sequence)` so
/// same-timestamp events process deterministically and insertion order
/// breaks any remaining tie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    at: u64,
    prio: u8,
    seq: u64,
    kind: EventKind,
}

/// A deterministic min-heap of events.
struct EventHeap {
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
}

impl EventHeap {
    fn new() -> EventHeap {
        EventHeap {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn push(&mut self, at: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev {
            at,
            prio: kind.priority(),
            seq,
            kind,
        }));
    }

    fn pop(&mut self) -> Option<Ev> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }
}

/// Runs `scenario` on the event core under `policy`, optionally reusing
/// a precomputed open-loop budget sequence (battery mode only; the
/// capacitor's budget layer is driven live).
///
/// # Errors
///
/// Everything [`Scenario::run`] can return, plus
/// [`SimError::InvalidParameter`] for [`Policy::Intermittent`] on a
/// scenario without an [`IntermittentConfig`].
pub(crate) fn run_event_driven_with_budgets(
    scenario: &Scenario,
    policy: Policy,
    shared_budgets: Option<&[Energy]>,
) -> Result<VdtRun, SimError> {
    // Fail fast on unknown static ids, like the scalar engine.
    if let Policy::Static(id) = policy {
        scenario.problem.point(id)?;
    }
    if policy == Policy::Intermittent && scenario.intermittent.is_none() {
        return Err(SimError::InvalidParameter(
            "Policy::Intermittent requires a scenario with an IntermittentConfig \
             (Scenario::builder().intermittent(..))"
                .to_owned(),
        ));
    }
    match &scenario.intermittent {
        None => run_battery_mode(scenario, policy, shared_budgets),
        Some(config) => run_intermittent_mode(scenario, policy, config),
    }
}

/// Battery mode: the scalar engine's semantics on the event core. Each
/// hour splits into `3600 / dt` epochs; the hour's harvest and planned
/// energy are spread uniformly across them and each epoch executes
/// through [`execute_step`]. At `dt = 3600` this is one call per hour
/// with the *original* hour values — bit-identical to the scalar loop.
fn run_battery_mode(
    scenario: &Scenario,
    policy: Policy,
    shared_budgets: Option<&[Energy]>,
) -> Result<VdtRun, SimError> {
    let dt = u64::from(scenario.dt_seconds);
    let steps_per_hour = HOUR_S / dt;
    let frac = 1.0 / to_f64(steps_per_hour);
    let harvest: Vec<Energy> = scenario.trace.iter().collect();
    let total_hours = harvest.len();
    let end_s = total_hours as u64 * HOUR_S;

    let mut planner = HourPlanner::new(scenario, policy, shared_budgets)?;
    let mut battery = scenario.battery.clone();
    let mut stats = ClockStats::default();
    let mut events = Vec::new();
    let mut hours = Vec::with_capacity(total_hours);

    let mut heap = EventHeap::new();
    for h in 0..total_hours {
        let at = h as u64 * HOUR_S;
        heap.push(at, EventKind::HarvestEdge(h as u32));
        heap.push(at, EventKind::Decision(h as u32));
    }
    heap.push(end_s, EventKind::End);
    heap.push(0, EventKind::Epoch);

    // Per-hour scratch state.
    let mut hour_harvest = Energy::ZERO;
    let mut current_plan: Option<(Energy, Schedule)> = None;
    // Exactly one of these carries the hour's realized fraction: at
    // dt = 3600 the single step's fraction is taken verbatim (bitwise
    // identical to the scalar engine); at sub-hour dt the supplied
    // joules accumulate and the ratio is formed at the hour edge.
    let mut hour_fraction = 1.0;
    let mut hour_supplied = 0.0f64;

    let finalize_hour = |h: usize,
                         hours: &mut Vec<HourRecord>,
                         planner: &mut HourPlanner<'_>,
                         battery: &Battery,
                         hour_harvest: Energy,
                         current_plan: &Option<(Energy, Schedule)>,
                         hour_fraction: f64,
                         hour_supplied: f64| {
        let (budget, planned) = current_plan
            .clone()
            .expect("a Decision event planned this hour before any epoch ran");
        let realized_fraction = if steps_per_hour == 1 {
            hour_fraction
        } else {
            let needed = planned.energy().joules();
            if needed > 0.0 {
                (hour_supplied / needed).clamp(0.0, 1.0)
            } else {
                1.0
            }
        };
        hours.push(HourRecord {
            day: (h / 24) as u32,
            hour: (h % 24) as u32,
            harvested: hour_harvest,
            budget,
            planned,
            realized_fraction,
            battery_level: battery.level(),
        });
        planner.end_hour(h, hour_harvest);
    };

    while let Some(ev) = heap.pop() {
        stats.events += 1;
        if scenario.trace_events {
            events.push(EventRecord {
                at_s: ev.at,
                kind: ev.kind.tag(),
            });
        }
        match ev.kind {
            EventKind::HarvestEdge(h) => {
                let h = h as usize;
                if h > 0 {
                    finalize_hour(
                        h - 1,
                        &mut hours,
                        &mut planner,
                        &battery,
                        hour_harvest,
                        &current_plan,
                        hour_fraction,
                        hour_supplied,
                    );
                }
                hour_harvest = harvest[h];
                stats.harvest_offered_j += hour_harvest.joules();
                hour_fraction = 1.0;
                hour_supplied = 0.0;
            }
            EventKind::Decision(h) => {
                let (budget, planned) = planner.plan_hour(h as usize, hour_harvest, &battery)?;
                current_plan = Some((budget, planned));
            }
            EventKind::Epoch => {
                let (_, planned) = current_plan
                    .as_ref()
                    .expect("a Decision event precedes the first epoch of every hour");
                if steps_per_hour == 1 {
                    hour_fraction = execute_step(&mut battery, hour_harvest, planned.energy());
                } else {
                    let step_needed = planned.energy() * frac;
                    let step_harvest = hour_harvest * frac;
                    let sf = execute_step(&mut battery, step_harvest, step_needed);
                    hour_supplied += step_needed.joules() * sf;
                }
                stats.epochs_committed += 1;
                if ev.at + dt < end_s {
                    heap.push(ev.at + dt, EventKind::Epoch);
                }
            }
            EventKind::End => {
                finalize_hour(
                    total_hours - 1,
                    &mut hours,
                    &mut planner,
                    &battery,
                    hour_harvest,
                    &current_plan,
                    hour_fraction,
                    hour_supplied,
                );
                break;
            }
            EventKind::Restore | EventKind::Failure | EventKind::Wake => {
                unreachable!("battery mode schedules no intermittency events")
            }
        }
    }

    let energy_layer = planner.energy_layer();
    Ok(VdtRun {
        report: SimReport::new(policy, energy_layer, scenario.problem.alpha(), hours),
        stats,
        events,
    })
}

/// The intermittent node's full state machine:
/// off → charging → (turn-on, restore tax) → on → epochs commit work
/// (checkpoint tax each) → brownout / forced failure / voluntary sleep
/// → off.
struct IntermittentCore<'s> {
    scenario: &'s Scenario,
    policy: Policy,
    config: &'s IntermittentConfig,
    /// Hourly planner for the non-burst policies (None for
    /// [`Policy::Intermittent`], which has no hourly budget layer).
    planner: Option<HourPlanner<'s>>,
    cap: Capacitor,
    dt: u64,
    end_s: u64,
    harvest: Vec<Energy>,
    /// Cached full-power schedule + full-hour budget per operating
    /// point, in problem order (the burst policy's candidates).
    full_schedules: Vec<(Energy, Schedule)>,
    /// The all-off schedule recorded for hours the node never ran.
    off_plan: Schedule,

    on: bool,
    forced_out: bool,
    /// Continuous time up to which the *off*-state store has been
    /// advanced (f64: brownouts land mid-epoch).
    off_since: f64,
    /// A wake this early would thrash (voluntary sleep damping): the
    /// next harvest edge re-evaluates instead.
    wake_not_before: u64,
    /// End time of the last executed epoch. A forced failure that lands
    /// *inside* an already-executed epoch interval takes effect at the
    /// interval's end (commits happen at epoch granularity), so
    /// off-state charging resumes from here, never double-counting the
    /// epoch's harvest.
    on_until: u64,
    pending_wake: Option<u64>,
    /// Which trace hour the current non-burst plan was made for (the
    /// hourly budget layer must run at most once per hour).
    planned_hour: Option<usize>,
    current_plan: Option<(Energy, Schedule)>,

    hour_harvest: Energy,
    /// Committed fraction of the current hour (each committed epoch
    /// adds `dt / 3600`).
    hour_committed: f64,
    /// The last plan decided during the current hour, for the record.
    hour_last_plan: Option<(Energy, Schedule)>,

    stats: ClockStats,
    hours: Vec<HourRecord>,
}

impl<'s> IntermittentCore<'s> {
    fn e_off(&self) -> f64 {
        self.cap.brownout_energy().joules()
    }

    fn e_on(&self) -> f64 {
        self.cap.turn_on_energy().joules()
    }

    /// Closed-form store advancement while the node is off: within one
    /// trace hour the input rate (`η · harvest / 3600`) and leakage are
    /// constant, so the level moves linearly with analytic clamping at
    /// the capacity (spill) and at zero (starvation). Callers keep `to`
    /// within the current hour.
    fn advance_off(&mut self, to: f64) {
        if self.on || to <= self.off_since {
            return;
        }
        let t = to - self.off_since;
        let p_in = self.cap.charge_efficiency() * self.hour_harvest.joules() / 3600.0;
        let p_leak = self.cap.leakage().watts();
        let net = p_in - p_leak;
        let mut e = self.cap.energy().joules();
        let capacity = self.cap.capacity().joules();
        if net >= 0.0 {
            let room = capacity - e;
            if net * t <= room {
                self.stats.stored_j += p_in * t;
                self.stats.leaked_j += p_leak * t;
                e += net * t;
            } else {
                // Fills up after `tau`; then input covers leakage and
                // the remainder spills.
                let tau = if net > 0.0 { room / net } else { 0.0 };
                let rest = t - tau;
                self.stats.stored_j += p_in * tau + p_leak * rest;
                self.stats.leaked_j += p_leak * t;
                self.stats.spilled_j += net * rest / self.cap.charge_efficiency();
                e = capacity;
            }
        } else {
            let drop = -net * t;
            if drop <= e {
                self.stats.stored_j += p_in * t;
                self.stats.leaked_j += p_leak * t;
                e -= drop;
            } else {
                // Runs dry after `tau`; then whatever trickles in leaks
                // straight back out.
                let tau = e / -net;
                let rest = t - tau;
                self.stats.stored_j += p_in * t;
                self.stats.leaked_j += p_leak * tau + p_in * rest;
                e = 0.0;
            }
        }
        self.cap
            .set_energy(Energy::from_joules(e.clamp(0.0, capacity)))
            .expect("closed-form level stays within [0, capacity]");
        self.off_since = to;
    }

    /// Computes when the (off, charging) store crosses the turn-on
    /// threshold under the current hour's rates and schedules a Wake at
    /// the next epoch-grid point at or after the crossing. Skips
    /// scheduling when the crossing falls beyond the current hour (the
    /// next harvest edge re-evaluates with the new rate) or inside the
    /// voluntary-sleep damping window.
    fn schedule_wake(&mut self, now: f64, heap: &mut EventHeap) {
        if self.on || self.forced_out {
            return;
        }
        let e = self.cap.energy().joules();
        let cross = if e >= self.e_on() {
            now
        } else {
            let p_in = self.cap.charge_efficiency() * self.hour_harvest.joules() / 3600.0;
            let net = p_in - self.cap.leakage().watts();
            if net <= 0.0 {
                return;
            }
            now + (self.e_on() - e) / net
        };
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cross_s = cross.max(0.0).ceil() as u64;
        let at = cross_s.div_ceil(self.dt) * self.dt;
        // Beyond this hour the rate changes; let the edge re-evaluate.
        let hour_end = (current_hour(now.max(0.0) as u64, self.end_s) as u64 + 1) * HOUR_S;
        if at >= self.end_s || at > hour_end || at < self.wake_not_before {
            return;
        }
        if self.pending_wake != Some(at) {
            self.pending_wake = Some(at);
            heap.push(at, EventKind::Wake);
        }
    }

    /// Turns the node on at grid time `t`: pays the restore tax (the
    /// hysteresis validation in [`IntermittentConfig::new`] guarantees
    /// this cannot immediately brown out) and plans.
    fn turn_on(&mut self, t: u64, heap: &mut EventHeap) -> Result<(), SimError> {
        let restore = self.config.restore_cost;
        self.cap.draw(restore);
        self.stats.restore_j += restore.joules();
        self.stats.bursts += 1;
        self.on = true;
        self.on_until = t;
        self.pending_wake = None;
        self.ensure_plan(t)?;
        if t + self.dt <= self.end_s {
            heap.push(t, EventKind::Epoch);
        }
        Ok(())
    }

    /// Makes sure a plan exists for the hour containing `t`. The
    /// non-burst policies run their hourly budget pipeline at most once
    /// per trace hour (a second turn-on within the hour reuses the
    /// plan); the burst policy re-chooses at every epoch.
    fn ensure_plan(&mut self, t: u64) -> Result<(), SimError> {
        let h = current_hour(t, self.end_s);
        if self.policy == Policy::Intermittent {
            self.current_plan = self.choose_burst_plan(t);
            if let Some(plan) = &self.current_plan {
                self.hour_last_plan = Some(plan.clone());
            }
            return Ok(());
        }
        if self.planned_hour != Some(h) {
            let view = self.cap_as_battery();
            let planner = self
                .planner
                .as_mut()
                .expect("non-burst policies plan hourly");
            let plan = planner.plan_hour(h, self.hour_harvest, &view)?;
            self.planned_hour = Some(h);
            self.current_plan = Some(plan.clone());
            self.hour_last_plan = Some(plan);
        } else if let Some(plan) = &self.current_plan {
            self.hour_last_plan = Some(plan.clone());
        }
        Ok(())
    }

    /// The capacitor as the `Battery` view the hourly budget layer and
    /// the MPC expect: capacity = store capacity, level = store level,
    /// loss-free (the capacitor's own efficiency and leakage are
    /// simulated by the core, not by the planning view).
    fn cap_as_battery(&self) -> Battery {
        Battery::new(self.cap.capacity(), self.cap.energy(), 1.0, 1.0)
            .expect("capacitor level is within [0, capacity]")
    }

    /// Approxify-style burst planning: pick the operating point that
    /// maximizes expected committed work over the remaining charge
    /// burst. For each candidate, one epoch costs
    /// `plan_energy·dt/3600 + checkpoint + leakage·dt` against
    /// `η·harvest_rate·dt` income; the margin above the brownout
    /// threshold then bounds how many epochs complete before the burst
    /// ends. Returns `None` when no point completes even one epoch —
    /// the node voluntarily sleeps and banks the energy instead.
    fn choose_burst_plan(&self, t: u64) -> Option<(Energy, Schedule)> {
        let frac = to_f64(self.dt) / 3600.0;
        let alpha = self.scenario.problem.alpha();
        let margin = self.cap.energy().joules() - self.e_off();
        let epoch_in =
            self.cap.charge_efficiency() * self.hour_harvest.joules() / 3600.0 * to_f64(self.dt);
        let leak_epoch = self.cap.leakage().watts() * to_f64(self.dt);
        let ckpt = self.config.checkpoint_cost.joules();
        let remaining = to_f64((self.end_s - t) / self.dt);
        let mut best: Option<(f64, &(Energy, Schedule))> = None;
        for candidate in &self.full_schedules {
            let (_, sched) = candidate;
            let epoch_cost = sched.energy().joules() * frac + ckpt + leak_epoch;
            let net = epoch_cost - epoch_in;
            let epochs = if net <= 0.0 {
                remaining
            } else {
                (margin / net).floor().min(remaining)
            };
            let value = epochs * sched.objective(alpha) * frac;
            if value > best.as_ref().map_or(0.0, |(v, _)| *v) {
                best = Some((value, candidate));
            }
        }
        best.map(|(_, plan)| plan.clone())
    }

    /// Executes the epoch `[t, t + dt)` while on. All harvest charges
    /// the store (at η) and the load draws from the store — standard
    /// batteryless topology, so the node browns out on store level
    /// regardless of instantaneous harvest. Returns `Ok(true)` when the
    /// node survived the epoch (work committed).
    fn run_epoch(&mut self, t: u64, heap: &mut EventHeap) -> Result<bool, SimError> {
        let frac = to_f64(self.dt) / 3600.0;
        self.ensure_plan(t)?;
        let Some((_, planned)) = self.current_plan.clone() else {
            // Voluntary sleep: no point completes an epoch. Wake checks
            // resume at the next harvest edge.
            self.power_down_voluntarily(t);
            return Ok(false);
        };
        let needed = planned.energy().joules() * frac;
        let gain = self.cap.charge_efficiency() * self.hour_harvest.joules() * frac;
        let leak = self.cap.leakage().watts() * to_f64(self.dt);
        let e = self.cap.energy().joules();
        let e_end = e + gain - needed - leak;
        if e_end < self.e_off() {
            // Brownout mid-epoch: the store hits the threshold at
            // fraction f of the epoch; the partial work is volatile and
            // lost, and the node is dead (still charging) for the rest
            // of the epoch.
            let f = ((e - self.e_off()) / (e - e_end)).clamp(0.0, 1.0);
            self.stats.stored_j += gain * f;
            self.stats.consumed_j += needed * f;
            self.stats.leaked_j += leak * f;
            self.cap
                .set_energy(Energy::from_joules(self.e_off()))
                .expect("brownout threshold is within range");
            self.stats.brownouts += 1;
            self.stats.epochs_lost += 1;
            self.on = false;
            self.off_since = to_f64(t) + f * to_f64(self.dt);
            self.schedule_wake(self.off_since, heap);
            return Ok(false);
        }
        let capacity = self.cap.capacity().joules();
        let overflow = (e_end - capacity).max(0.0);
        self.stats.stored_j += gain - overflow;
        self.stats.spilled_j += overflow / self.cap.charge_efficiency();
        self.stats.consumed_j += needed;
        self.stats.leaked_j += leak;
        let mut e_final = e_end.min(capacity);
        // Checkpoint tax: commit only if it completes above the
        // brownout threshold; a checkpoint cut short loses the epoch.
        let ckpt = self.config.checkpoint_cost.joules();
        if e_final - ckpt >= self.e_off() {
            e_final -= ckpt;
            self.stats.checkpoint_j += ckpt;
            self.cap
                .set_energy(Energy::from_joules(e_final))
                .expect("post-checkpoint level is within range");
            self.stats.epochs_committed += 1;
            self.stats.committed_objective +=
                planned.objective(self.scenario.problem.alpha()) * frac;
            self.stats.committed_active_s += planned.active_time().seconds() * frac;
            self.hour_committed += frac;
            self.on_until = t + self.dt;
            if t + 2 * self.dt <= self.end_s {
                heap.push(t + self.dt, EventKind::Epoch);
            }
            Ok(true)
        } else {
            let partial = (e_final - self.e_off()).max(0.0);
            self.stats.checkpoint_j += partial;
            self.cap
                .set_energy(Energy::from_joules(self.e_off()))
                .expect("brownout threshold is within range");
            self.stats.brownouts += 1;
            self.stats.epochs_lost += 1;
            self.on = false;
            self.off_since = to_f64(t + self.dt);
            self.schedule_wake(self.off_since, heap);
            Ok(false)
        }
    }

    fn power_down_voluntarily(&mut self, t: u64) {
        self.stats.sleeps += 1;
        self.on = false;
        self.off_since = to_f64(t);
        // Damp wake churn: re-evaluate at the next harvest edge.
        self.wake_not_before = (current_hour(t, self.end_s) as u64 + 1) * HOUR_S;
    }

    /// Emits the record for completed hour `h` and resets the per-hour
    /// scratch state. The allocator/forecaster memory advances only if
    /// the node is alive at the boundary — a dead node observes nothing,
    /// and a node that died mid-hour lost that (volatile) observation
    /// with the power failure.
    fn finalize_hour(&mut self, h: usize) {
        let (budget, planned) = match self.hour_last_plan.take() {
            Some((budget, planned)) => (budget, planned),
            None => (Energy::ZERO, self.off_plan.clone()),
        };
        self.hours.push(HourRecord {
            day: (h / 24) as u32,
            hour: (h % 24) as u32,
            harvested: self.hour_harvest,
            budget,
            planned,
            realized_fraction: self.hour_committed.clamp(0.0, 1.0),
            battery_level: self.cap.energy(),
        });
        if self.on {
            if let Some(planner) = self.planner.as_mut() {
                planner.end_hour(h, self.hour_harvest);
            }
        }
        self.hour_committed = 0.0;
    }
}

/// Exact `u64` → `f64` for simulation-clock magnitudes: every time or
/// count passed here is bounded by `days * 86_400` seconds (or steps),
/// far below 2^53, so the conversion never rounds.
fn to_f64(v: u64) -> f64 {
    // reap-lint: allow(unsafe:float-cast) -- callers pass sim times/counts < 2^53; conversion is exact
    v as f64
}

fn current_hour(t: u64, end_s: u64) -> usize {
    ((t.min(end_s.saturating_sub(1))) / HOUR_S) as usize
}

/// Intermittent mode: the capacitor store with power-failure and
/// checkpoint/restore semantics.
fn run_intermittent_mode(
    scenario: &Scenario,
    policy: Policy,
    config: &IntermittentConfig,
) -> Result<VdtRun, SimError> {
    // The open-loop protocol precomputes budgets against the scenario
    // *battery*, which does not exist here: on a capacitor the hourly
    // budget layer always runs closed-loop against the live store.
    let mut closed = scenario.clone();
    closed.budget_mode = crate::BudgetMode::ClosedLoop;
    let scenario = &closed;
    let dt = u64::from(scenario.dt_seconds);
    let harvest: Vec<Energy> = scenario.trace.iter().collect();
    let total_hours = harvest.len();
    let end_s = total_hours as u64 * HOUR_S;
    let problem = &scenario.problem;

    let planner = if policy == Policy::Intermittent {
        None
    } else {
        Some(HourPlanner::new(scenario, policy, None)?)
    };
    // The burst policy's candidates: each point running flat out for a
    // full period, computed once.
    let full_schedules: Vec<(Energy, Schedule)> = problem
        .points()
        .iter()
        .map(|p| {
            let budget = p.power() * problem.period();
            static_schedule(problem, p.id(), budget).map(|sched| (budget, sched))
        })
        .collect::<Result<_, _>>()?;
    let off_plan = static_schedule(problem, problem.points()[0].id(), problem.min_budget())?;

    let mut core = IntermittentCore {
        scenario,
        policy,
        config,
        planner,
        cap: config.capacitor.clone(),
        dt,
        end_s,
        harvest,
        full_schedules,
        off_plan,
        on: false,
        forced_out: false,
        off_since: 0.0,
        wake_not_before: 0,
        on_until: 0,
        pending_wake: None,
        planned_hour: None,
        current_plan: None,
        hour_harvest: Energy::ZERO,
        hour_committed: 0.0,
        hour_last_plan: None,
        stats: ClockStats::default(),
        hours: Vec::with_capacity(total_hours),
    };
    core.stats.initial_store_j = core.cap.energy().joules();

    let mut events = Vec::new();
    let mut heap = EventHeap::new();
    for h in 0..total_hours {
        heap.push(h as u64 * HOUR_S, EventKind::HarvestEdge(h as u32));
    }
    heap.push(end_s, EventKind::End);
    for &(start, end) in &config.failures {
        if start < end_s {
            heap.push(start, EventKind::Failure);
            heap.push(end.min(end_s), EventKind::Restore);
        }
    }

    while let Some(ev) = heap.pop() {
        core.stats.events += 1;
        if scenario.trace_events {
            events.push(EventRecord {
                at_s: ev.at,
                kind: ev.kind.tag(),
            });
        }
        match ev.kind {
            EventKind::HarvestEdge(h) => {
                let h = h as usize;
                core.advance_off(to_f64(ev.at));
                if h > 0 {
                    core.finalize_hour(h - 1);
                }
                core.hour_harvest = core.harvest[h];
                core.stats.harvest_offered_j += core.hour_harvest.joules();
                core.wake_not_before = 0;
                core.pending_wake = None;
                if !core.on {
                    core.schedule_wake(to_f64(ev.at), &mut heap);
                }
            }
            EventKind::Wake => {
                if core.pending_wake == Some(ev.at) {
                    core.pending_wake = None;
                }
                if core.on || core.forced_out {
                    continue;
                }
                core.advance_off(to_f64(ev.at));
                if core.cap.can_turn_on() {
                    core.turn_on(ev.at, &mut heap)?;
                } else {
                    // Rates drifted (leak beat the estimate); recompute.
                    core.schedule_wake(to_f64(ev.at), &mut heap);
                }
            }
            EventKind::Epoch => {
                if !core.on {
                    // A failure (or brownout) pre-empted this epoch.
                    continue;
                }
                core.run_epoch(ev.at, &mut heap)?;
            }
            EventKind::Failure => {
                core.stats.forced_failures += 1;
                core.forced_out = true;
                if core.on {
                    // SIGKILL at the plug: the in-flight volatile window
                    // dies with the power. Epoch accounting already ran
                    // to `on_until`, so charging resumes from there.
                    core.stats.epochs_lost += 1;
                    core.on = false;
                    core.off_since = to_f64(ev.at).max(to_f64(core.on_until));
                } else {
                    core.advance_off(to_f64(ev.at));
                }
                core.pending_wake = None;
            }
            EventKind::Restore => {
                core.advance_off(to_f64(ev.at));
                core.forced_out = false;
                core.schedule_wake(to_f64(ev.at), &mut heap);
            }
            EventKind::End => {
                core.advance_off(to_f64(ev.at));
                core.finalize_hour(total_hours - 1);
                break;
            }
            EventKind::Decision(_) => {
                unreachable!("intermittent mode plans inside epochs, not via Decision events")
            }
        }
    }

    core.stats.final_store_j = core.cap.energy().joules();
    let energy_layer = match &core.planner {
        Some(planner) => planner.energy_layer(),
        None => "burst",
    };
    let report = SimReport::new(policy, energy_layer, problem.alpha(), core.hours);
    Ok(VdtRun {
        report,
        stats: core.stats,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_core::OperatingPoint;
    use reap_harvest::HarvestTrace;
    use reap_units::Power;

    fn paper_points() -> Vec<OperatingPoint> {
        let specs = [
            (1u8, 0.94, 2.76),
            (2, 0.93, 2.30),
            (3, 0.92, 1.82),
            (4, 0.90, 1.64),
            (5, 0.76, 1.20),
        ];
        specs
            .iter()
            .map(|&(id, a, mw)| {
                OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw)).unwrap()
            })
            .collect()
    }

    fn teg_trace(seed: u64, days: u32) -> HarvestTrace {
        reap_harvest::SourceKind::BodyHeat
            .instantiate(seed)
            .generate(244, days)
            .unwrap()
    }

    #[test]
    fn event_heap_orders_by_time_then_priority_then_seq() {
        let mut heap = EventHeap::new();
        heap.push(10, EventKind::Epoch);
        heap.push(10, EventKind::HarvestEdge(0));
        heap.push(5, EventKind::End);
        heap.push(10, EventKind::Failure);
        let order: Vec<(u64, &'static str)> = std::iter::from_fn(|| heap.pop())
            .map(|ev| (ev.at, ev.kind.tag()))
            .collect();
        assert_eq!(
            order,
            vec![
                (5, "end"),
                (10, "harvest-edge"),
                (10, "failure"),
                (10, "epoch"),
            ]
        );
    }

    #[test]
    fn config_validates_taxes_against_the_hysteresis_band() {
        let cap = Capacitor::supercap_wearable();
        // Usable band is 0.23 J; a restore tax that large must fail.
        assert!(IntermittentConfig::new(
            cap.clone(),
            Energy::from_joules(0.002),
            Energy::from_joules(0.23),
        )
        .is_err());
        assert!(
            IntermittentConfig::new(cap.clone(), Energy::from_joules(-0.1), Energy::ZERO).is_err()
        );
        assert!(IntermittentConfig::new(
            cap,
            Energy::from_joules(0.002),
            Energy::from_joules(0.005)
        )
        .is_ok());
    }

    #[test]
    fn failure_windows_validate() {
        let ok = IntermittentConfig::wearable_default();
        assert!(ok.clone().with_failures(vec![(0, 10), (10, 20)]).is_ok());
        assert!(ok.clone().with_failures(vec![(10, 10)]).is_err());
        assert!(ok.clone().with_failures(vec![(0, 10), (5, 20)]).is_err());
        assert!(ok.with_failures(vec![(10, 20), (0, 5)]).is_err());
    }

    #[test]
    fn intermittent_policy_requires_intermittent_scenario() {
        let s = crate::Scenario::builder(teg_trace(1, 2))
            .points(paper_points())
            .build()
            .unwrap();
        let err = s.run(Policy::Intermittent).unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter(_)));
    }

    #[test]
    fn intermittent_run_commits_work_and_balances_the_ledger() {
        let s = crate::Scenario::builder(teg_trace(3, 5))
            .points(paper_points())
            .dt_seconds(300)
            .intermittent(IntermittentConfig::wearable_default())
            .build()
            .unwrap();
        let run = s.run_event_driven(Policy::Intermittent).unwrap();
        assert_eq!(run.report.hours().len(), 5 * 24);
        assert!(run.stats.bursts > 0, "TEG harvest must boot the node");
        assert!(run.stats.epochs_committed > 0);
        assert!(
            run.stats.ledger_drift().abs() <= 1e-9,
            "ledger drift {} J",
            run.stats.ledger_drift()
        );
        for h in run.report.hours() {
            assert!((0.0..=1.0).contains(&h.realized_fraction));
            assert!(!h.battery_level.is_negative());
            assert!(h.battery_level.joules() <= 0.5445 + 1e-12);
        }
    }

    #[test]
    fn forced_failures_kill_and_the_node_recovers() {
        let config = IntermittentConfig::wearable_default()
            .with_failures(vec![(7200, 10800), (40_000, 50_000)])
            .unwrap();
        let s = crate::Scenario::builder(teg_trace(5, 2))
            .points(paper_points())
            .dt_seconds(300)
            .intermittent(config)
            .build()
            .unwrap();
        let run = s.run_event_driven(Policy::Intermittent).unwrap();
        assert_eq!(run.stats.forced_failures, 2);
        assert!(run.stats.ledger_drift().abs() <= 1e-9);
        // Work exists on both sides of the outages.
        assert!(run.stats.epochs_committed > 0);
    }

    #[test]
    fn hourly_policies_run_on_the_capacitor_too() {
        for policy in [
            Policy::Reap,
            Policy::Static(5),
            Policy::Horizon { lookahead: 4 },
        ] {
            let s = crate::Scenario::builder(teg_trace(7, 2))
                .points(paper_points())
                .dt_seconds(600)
                .intermittent(IntermittentConfig::wearable_default())
                .build()
                .unwrap();
            let run = s.run_event_driven(policy).unwrap();
            assert_eq!(run.report.hours().len(), 48, "{policy}");
            assert!(run.stats.ledger_drift().abs() <= 1e-9, "{policy}");
        }
    }

    #[test]
    fn event_log_is_recorded_when_traced() {
        let s = crate::Scenario::builder(teg_trace(9, 1))
            .points(paper_points())
            .dt_seconds(900)
            .intermittent(IntermittentConfig::wearable_default())
            .trace_events(true)
            .build()
            .unwrap();
        let run = s.run_event_driven(Policy::Intermittent).unwrap();
        assert_eq!(run.events.len() as u64, run.stats.events);
        assert_eq!(run.events.last().unwrap().kind, "end");
        // Timestamps are non-decreasing.
        assert!(run.events.windows(2).all(|w| w[0].at_s <= w[1].at_s));
    }
}
