//! Simulation reports and cross-policy comparisons.

use std::borrow::Cow;
use std::fmt;

use reap_core::Schedule;
use reap_units::{Energy, TimeSpan};

use crate::Policy;

/// Everything that happened in one simulated hour.
#[derive(Debug, Clone, PartialEq)]
pub struct HourRecord {
    /// Day index within the trace (0-based).
    pub day: u32,
    /// Hour of day (0-23).
    pub hour: u32,
    /// Energy actually harvested during the hour.
    pub harvested: Energy,
    /// Budget the allocation layer granted the planner.
    pub budget: Energy,
    /// The schedule the policy planned.
    pub planned: Schedule,
    /// Fraction of the plan that actually executed (1.0 unless the supply
    /// browned out mid-hour).
    pub realized_fraction: f64,
    /// Battery level at the end of the hour.
    pub battery_level: Energy,
}

impl HourRecord {
    /// Realized objective of the hour: planned `J(t)` scaled by the
    /// realized fraction.
    #[must_use]
    pub fn realized_objective(&self, alpha: f64) -> f64 {
        self.planned.objective(alpha) * self.realized_fraction
    }

    /// Realized expected accuracy of the hour.
    #[must_use]
    pub fn realized_accuracy(&self) -> f64 {
        self.planned.expected_accuracy() * self.realized_fraction
    }

    /// Realized active time of the hour.
    #[must_use]
    pub fn realized_active_time(&self) -> TimeSpan {
        self.planned.active_time() * self.realized_fraction
    }

    /// `true` if the supply failed to cover the plan.
    #[must_use]
    pub fn browned_out(&self) -> bool {
        self.realized_fraction < 1.0
    }
}

/// The result of simulating one policy over a whole trace.
///
/// Stores the [`Policy`] value itself (`Copy`) and the allocator's
/// `&'static str` name rather than owned strings — a matrix run produces
/// one report per (scenario, policy) pair and should not allocate names.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    policy: Policy,
    allocator: &'static str,
    alpha: f64,
    hours: Vec<HourRecord>,
}

impl SimReport {
    pub(crate) fn new(
        policy: Policy,
        allocator: &'static str,
        alpha: f64,
        hours: Vec<HourRecord>,
    ) -> SimReport {
        SimReport {
            policy,
            allocator,
            alpha,
            hours,
        }
    }

    /// The simulated policy.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Name of the simulated policy (`"REAP"` or `"DPk"`).
    #[must_use]
    pub fn policy_name(&self) -> Cow<'static, str> {
        self.policy.name()
    }

    /// Name of the energy layer that drove the run: the budget allocator
    /// for the myopic policies (e.g. `"ewma"`), or the harvest
    /// forecaster for [`Policy::Horizon`] (e.g. `"oracle-forecast"`),
    /// which bypasses the allocator.
    #[must_use]
    pub fn allocator_name(&self) -> &'static str {
        self.allocator
    }

    /// The `alpha` the planner optimized for.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Hour-by-hour records.
    #[must_use]
    pub fn hours(&self) -> &[HourRecord] {
        &self.hours
    }

    /// Number of simulated days.
    #[must_use]
    pub fn days(&self) -> u32 {
        (self.hours.len() / 24) as u32
    }

    /// Sum of realized objectives over all hours.
    #[must_use]
    pub fn total_objective(&self, alpha: f64) -> f64 {
        self.hours.iter().map(|h| h.realized_objective(alpha)).sum()
    }

    /// Mean realized expected accuracy per hour.
    #[must_use]
    pub fn mean_accuracy(&self) -> f64 {
        if self.hours.is_empty() {
            return 0.0;
        }
        self.hours
            .iter()
            .map(HourRecord::realized_accuracy)
            .sum::<f64>()
            / self.hours.len() as f64
    }

    /// Total realized active time.
    #[must_use]
    pub fn total_active_time(&self) -> TimeSpan {
        self.hours
            .iter()
            .map(HourRecord::realized_active_time)
            .sum()
    }

    /// Hours in which the plan browned out.
    #[must_use]
    pub fn brownout_hours(&self) -> usize {
        self.hours.iter().filter(|h| h.browned_out()).count()
    }

    /// Total energy harvested over the trace.
    #[must_use]
    pub fn total_harvested(&self) -> Energy {
        self.hours.iter().map(|h| h.harvested).sum()
    }

    /// Realized objective summed per day.
    #[must_use]
    pub fn daily_objective(&self, alpha: f64) -> Vec<f64> {
        let days = self.days() as usize;
        let mut out = vec![0.0; days];
        for h in &self.hours {
            out[h.day as usize] += h.realized_objective(alpha);
        }
        out
    }

    /// Serializes the hour-by-hour record as CSV
    /// (`day,hour,harvested_j,budget_j,expected_accuracy,active_s,realized_fraction,battery_j`),
    /// for plotting outside Rust.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "day,hour,harvested_j,budget_j,expected_accuracy,active_s,realized_fraction,battery_j\n",
        );
        for h in &self.hours {
            out.push_str(&format!(
                "{},{},{:.6},{:.6},{:.6},{:.3},{:.6},{:.6}\n",
                h.day,
                h.hour,
                h.harvested.joules(),
                h.budget.joules(),
                h.planned.expected_accuracy(),
                h.planned.active_time().seconds(),
                h.realized_fraction,
                h.battery_level.joules(),
            ));
        }
        out
    }

    /// Per-day ratio of this report's objective to `baseline`'s, as
    /// `(min, mean, max)` over days where the baseline is positive — the
    /// statistics behind the paper's Fig. 7 error bars. `None` when the
    /// baseline never scores.
    #[must_use]
    pub fn normalized_daily(&self, baseline: &SimReport, alpha: f64) -> Option<(f64, f64, f64)> {
        let ours = self.daily_objective(alpha);
        let theirs = baseline.daily_objective(alpha);
        let ratios: Vec<f64> = ours
            .iter()
            .zip(&theirs)
            .filter(|(_, &b)| b > 1e-12)
            .map(|(&a, &b)| a / b)
            .collect();
        if ratios.is_empty() {
            return None;
        }
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        Some((min, mean, max))
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} allocator, alpha {}): {} days, J = {:.1}, mean accuracy {:.1}%, active {:.1} h, {} brownouts",
            self.policy,
            self.allocator,
            self.alpha,
            self.days(),
            self.total_objective(self.alpha),
            self.mean_accuracy() * 100.0,
            self.total_active_time().hours(),
            self.brownout_hours(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_core::{OperatingPoint, ReapProblem};
    use reap_units::Power;

    fn hour_record(day: u32, accuracy_weight: f64) -> HourRecord {
        let problem = ReapProblem::builder()
            .point(OperatingPoint::new(1, "DP1", 0.9, Power::from_milliwatts(2.0)).unwrap())
            .build()
            .unwrap();
        let planned = problem.solve(Energy::from_joules(7.2)).unwrap();
        HourRecord {
            day,
            hour: 12,
            harvested: Energy::from_joules(5.0),
            budget: Energy::from_joules(7.2),
            planned,
            realized_fraction: accuracy_weight,
            battery_level: Energy::from_joules(10.0),
        }
    }

    #[test]
    fn hour_record_metrics_scale_with_realized_fraction() {
        let full = hour_record(0, 1.0);
        let half = hour_record(0, 0.5);
        assert!(!full.browned_out());
        assert!(half.browned_out());
        assert!((full.realized_accuracy() - 0.9).abs() < 1e-9);
        assert!((half.realized_accuracy() - 0.45).abs() < 1e-9);
        assert!((half.realized_active_time().seconds() - 1800.0).abs() < 1e-6);
    }

    #[test]
    fn report_aggregates() {
        let hours: Vec<HourRecord> = (0..48).map(|i| hour_record(i / 24, 1.0)).collect();
        let r = SimReport::new(Policy::Reap, "ewma", 1.0, hours);
        assert_eq!(r.days(), 2);
        assert!((r.total_objective(1.0) - 48.0 * 0.9).abs() < 1e-9);
        assert!((r.mean_accuracy() - 0.9).abs() < 1e-9);
        assert_eq!(r.brownout_hours(), 0);
        let daily = r.daily_objective(1.0);
        assert_eq!(daily.len(), 2);
        assert!((daily[0] - 24.0 * 0.9).abs() < 1e-9);
    }

    #[test]
    fn normalized_daily_ratios() {
        let ours = SimReport::new(
            Policy::Reap,
            "ewma",
            1.0,
            (0..24).map(|_| hour_record(0, 1.0)).collect(),
        );
        let theirs = SimReport::new(
            Policy::Static(1),
            "ewma",
            1.0,
            (0..24).map(|_| hour_record(0, 0.5)).collect(),
        );
        let (min, mean, max) = ours.normalized_daily(&theirs, 1.0).unwrap();
        assert!((min - 2.0).abs() < 1e-9);
        assert!((mean - 2.0).abs() < 1e-9);
        assert!((max - 2.0).abs() < 1e-9);
        // Zero baseline -> None.
        let dead = SimReport::new(
            Policy::Static(1),
            "ewma",
            1.0,
            (0..24).map(|_| hour_record(0, 0.0)).collect(),
        );
        assert!(ours.normalized_daily(&dead, 1.0).is_none());
    }

    #[test]
    fn csv_has_header_and_one_row_per_hour() {
        let r = SimReport::new(
            Policy::Reap,
            "ewma",
            1.0,
            (0..24).map(|_| hour_record(0, 1.0)).collect(),
        );
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 25);
        assert!(lines[0].starts_with("day,hour,"));
        assert_eq!(lines[1].split(',').count(), 8);
    }

    #[test]
    fn display_summarizes() {
        let r = SimReport::new(
            Policy::Reap,
            "ewma",
            1.0,
            (0..24).map(|_| hour_record(0, 1.0)).collect(),
        );
        let s = r.to_string();
        assert!(s.contains("REAP"));
        assert!(s.contains("1 days"));
    }
}
