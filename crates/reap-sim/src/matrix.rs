//! The parallel scenario executor: policies × scenarios fanned out over
//! OS threads.
//!
//! The figure/table binaries and month-long comparisons run the same
//! hour-by-hour engine over many (scenario, policy) pairs. Each pair is
//! independent, and in the paper's open-loop protocol the budget sequence
//! depends only on the scenario — so [`run_matrix`] computes each
//! scenario's budgets once, then executes every pair on a scoped worker
//! pool. Results are returned in deterministic (scenario-major, policy
//! order) layout and are bit-identical to sequential [`Scenario::run`]
//! calls: parallelism changes only which core runs a pair, never the
//! arithmetic inside it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use reap_units::Energy;

use crate::engine::{self, Policy};
use crate::{BudgetMode, Scenario, SimError, SimReport};

/// Runs every `policy` over every `scenario` in parallel.
///
/// Returns `reports[s][p]`: the report for `scenarios[s]` under
/// `policies[p]`. Worker threads are capped at the machine's available
/// parallelism (and at the number of pairs); each open-loop scenario's
/// budget sequence is computed once and shared by all of its policy runs.
///
/// # Errors
///
/// Propagates the first engine error in (scenario, policy) order —
/// e.g. a [`Policy::Static`] id missing from a scenario's problem.
pub fn run_matrix(
    scenarios: &[Scenario],
    policies: &[Policy],
) -> Result<Vec<Vec<SimReport>>, SimError> {
    run_matrix_with_threads(scenarios, policies, None)
}

/// [`run_matrix`] with an explicit worker-thread cap.
///
/// `max_threads = None` uses the machine's available parallelism;
/// `Some(n)` caps the pool at `n` workers (always additionally capped at
/// the number of pairs). The *results are bit-identical for every thread
/// count*: parallelism changes only which core runs a pair, never the
/// arithmetic inside it — the guarantee the fleet simulator's
/// determinism tests pin down.
///
/// # Errors
///
/// Same as [`run_matrix`].
pub fn run_matrix_with_threads(
    scenarios: &[Scenario],
    policies: &[Policy],
    max_threads: Option<std::num::NonZeroUsize>,
) -> Result<Vec<Vec<SimReport>>, SimError> {
    if scenarios.is_empty() || policies.is_empty() {
        return Ok(scenarios.iter().map(|_| Vec::new()).collect());
    }

    // Open-loop budget sequences are policy-independent: one per
    // scenario. Skip the precompute entirely when no policy consumes
    // budgets (an all-MPC batch, e.g. a fleet on `Policy::Horizon`, or
    // an all-burst batch on `Policy::Intermittent` — burst planning has
    // no hourly budget layer): running the allocator over every trace
    // would be pure waste. Intermittent scenarios also skip it: their
    // hourly budget layer runs closed-loop against the capacitor.
    let any_budget_consumer = policies
        .iter()
        .any(|p| !matches!(p, Policy::Horizon { .. } | Policy::Intermittent));
    let shared_budgets: Vec<Option<Vec<Energy>>> = scenarios
        .iter()
        .map(|s| match s.budget_mode {
            BudgetMode::OpenLoop if any_budget_consumer && s.intermittent.is_none() => {
                Some(engine::open_loop_budgets(s))
            }
            _ => None,
        })
        .collect();

    let jobs = scenarios.len() * policies.len();
    let next_job = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<SimReport, SimError>>>> =
        (0..jobs).map(|_| Mutex::new(None)).collect();
    let workers = max_threads
        .or_else(|| std::thread::available_parallelism().ok())
        .map_or(1, std::num::NonZero::get)
        .min(jobs);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = next_job.fetch_add(1, Ordering::Relaxed);
                if job >= jobs {
                    break;
                }
                let (s, p) = (job / policies.len(), job % policies.len());
                let result = engine::run_with_budgets(
                    &scenarios[s],
                    policies[p],
                    shared_budgets[s].as_deref(),
                );
                *slots[job].lock().expect("no panics hold this lock") = Some(result);
            });
        }
    });

    let mut flat = slots.into_iter().map(|slot| {
        slot.into_inner()
            .expect("worker panics propagate out of the scope")
            .expect("every job index was claimed exactly once")
    });
    let mut reports = Vec::with_capacity(scenarios.len());
    for _ in scenarios {
        reports.push(
            flat.by_ref()
                .take(policies.len())
                .collect::<Result<_, _>>()?,
        );
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_core::OperatingPoint;
    use reap_harvest::HarvestTrace;
    use reap_units::Power;

    fn paper_points() -> Vec<OperatingPoint> {
        let specs = [
            (1u8, 0.94, 2.76),
            (2, 0.93, 2.30),
            (3, 0.92, 1.82),
            (4, 0.90, 1.64),
            (5, 0.76, 1.20),
        ];
        specs
            .iter()
            .map(|&(id, a, mw)| {
                OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw)).unwrap()
            })
            .collect()
    }

    fn scenario(seed: u64, alpha: f64) -> Scenario {
        Scenario::builder(HarvestTrace::september_like(seed))
            .points(paper_points())
            .alpha(alpha)
            .build()
            .unwrap()
    }

    #[test]
    fn matrix_is_bit_identical_to_sequential_runs() {
        let scenarios = [scenario(11, 1.0), scenario(12, 2.0)];
        let policies = [Policy::Reap, Policy::Static(1), Policy::Static(5)];
        let matrix = run_matrix(&scenarios, &policies).unwrap();
        assert_eq!(matrix.len(), scenarios.len());
        for (s, row) in scenarios.iter().zip(&matrix) {
            assert_eq!(row.len(), policies.len());
            for (&policy, report) in policies.iter().zip(row) {
                assert_eq!(report, &s.run(policy).unwrap(), "{policy} diverged");
            }
        }
    }

    #[test]
    fn thread_cap_never_changes_results() {
        let scenarios = [scenario(21, 1.0), scenario(22, 0.5)];
        let policies = [Policy::Reap, Policy::Static(3)];
        let unbounded = run_matrix_with_threads(&scenarios, &policies, None).unwrap();
        for threads in [1usize, 2, 7] {
            let capped = run_matrix_with_threads(
                &scenarios,
                &policies,
                Some(std::num::NonZeroUsize::new(threads).unwrap()),
            )
            .unwrap();
            assert_eq!(capped, unbounded, "{threads}-thread run diverged");
        }
    }

    #[test]
    fn matrix_handles_closed_loop_scenarios() {
        let closed = Scenario::builder(HarvestTrace::september_like(13))
            .points(paper_points())
            .budget_mode(BudgetMode::ClosedLoop)
            .build()
            .unwrap();
        let matrix = run_matrix(std::slice::from_ref(&closed), &[Policy::Reap]).unwrap();
        assert_eq!(matrix[0][0], closed.run(Policy::Reap).unwrap());
    }

    #[test]
    fn matrix_propagates_unknown_point_errors() {
        let err = run_matrix(&[scenario(14, 1.0)], &[Policy::Reap, Policy::Static(99)]);
        assert!(matches!(err, Err(SimError::Core(_))));
    }

    #[test]
    fn empty_inputs_yield_empty_matrices() {
        assert!(run_matrix(&[], &[Policy::Reap]).unwrap().is_empty());
        let rows = run_matrix(&[scenario(15, 1.0)], &[]).unwrap();
        assert_eq!(rows, vec![Vec::new()]);
    }
}
