//! Scenario configuration.

use reap_core::{OperatingPoint, ReapProblem};
use reap_harvest::{
    Battery, BudgetAllocator, EwmaAllocator, EwmaForecaster, GreedyAllocator, HarvestForecaster,
    HarvestTrace, OracleForecaster, UniformDailyAllocator,
};
use reap_units::Power;

use crate::clock::IntermittentConfig;
use crate::engine::{self, Policy};
use crate::{SimError, SimReport};

/// How the hourly budgets are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetMode {
    /// Budgets are precomputed once from the harvest trace (against a
    /// virtual battery that assumes each budget is fully spent), so every
    /// policy sees the **same** budget sequence. This is the paper's
    /// evaluation protocol: "these energy budgets are then used to
    /// evaluate REAP and the static design points".
    #[default]
    OpenLoop,
    /// Budgets react to the policy's own battery trajectory. More
    /// realistic, but policies diverge; provided as an ablation.
    ClosedLoop,
}

/// Which budget-allocation policy the scenario uses (see
/// [`reap_harvest::BudgetAllocator`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocatorKind {
    /// Kansal-style per-slot EWMA (the default).
    #[default]
    Ewma,
    /// Spend-as-you-go.
    Greedy,
    /// Trailing daily harvest split uniformly.
    UniformDaily,
}

impl AllocatorKind {
    pub(crate) fn instantiate(self) -> Box<dyn BudgetAllocator> {
        match self {
            AllocatorKind::Ewma => Box::new(EwmaAllocator::new()),
            AllocatorKind::Greedy => Box::new(GreedyAllocator),
            AllocatorKind::UniformDaily => Box::new(UniformDailyAllocator::new()),
        }
    }
}

/// Which harvest forecaster feeds [`Policy::Horizon`]'s lookahead window
/// (see [`reap_harvest::HarvestForecaster`]). Ignored by the myopic
/// policies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ForecasterKind {
    /// Causal per-hour-of-day EWMA projection (the default): the
    /// deployable forecaster, sharing the allocator's diurnal estimator.
    #[default]
    Ewma,
    /// Seeded noisy oracle over the scenario's own trace: the true future
    /// perturbed hour-by-hour by up to `rel_error` (e.g. `0.2` = ±20%).
    /// `rel_error = 0` is the perfect-information upper bound.
    Oracle {
        /// Relative forecast error in `[0, 1]`.
        rel_error: f64,
        /// Seed of the deterministic per-hour perturbation.
        seed: u64,
    },
}

impl ForecasterKind {
    pub(crate) fn instantiate(self, trace: &HarvestTrace) -> Box<dyn HarvestForecaster> {
        match self {
            ForecasterKind::Ewma => Box::new(EwmaForecaster::new()),
            ForecasterKind::Oracle { rel_error, seed } => Box::new(OracleForecaster::new(
                trace.iter().collect(),
                rel_error,
                seed,
            )),
        }
    }
}

/// A complete simulation scenario: harvest trace, device operating points,
/// battery, allocator policy, and the optimizer's `alpha`.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub(crate) trace: HarvestTrace,
    pub(crate) problem: ReapProblem,
    pub(crate) battery: Battery,
    pub(crate) allocator: AllocatorKind,
    pub(crate) budget_mode: BudgetMode,
    pub(crate) forecaster: ForecasterKind,
    /// Execution-epoch length of the event core, in seconds. 3600 (the
    /// default) with no [`IntermittentConfig`] keeps the scalar hourly
    /// engine; anything else routes through [`crate::clock`].
    pub(crate) dt_seconds: u32,
    /// Capacitor-scale intermittent operation, when configured.
    pub(crate) intermittent: Option<IntermittentConfig>,
    /// Record the event core's event stream (crash-point harnesses).
    pub(crate) trace_events: bool,
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    trace: HarvestTrace,
    points: Vec<OperatingPoint>,
    alpha: f64,
    off_power: Power,
    battery: Battery,
    allocator: AllocatorKind,
    budget_mode: BudgetMode,
    forecaster: ForecasterKind,
    dt_seconds: u32,
    intermittent: Option<IntermittentConfig>,
    trace_events: bool,
}

impl Scenario {
    /// Starts a builder from a harvest trace — from *any*
    /// [`HarvestSource`](reap_harvest::HarvestSource), not just the
    /// paper's outdoor solar panel: [`HarvestTrace::september_like`]
    /// reproduces the Fig. 7 solar month, while
    /// [`SourceKind::instantiate`](reap_harvest::SourceKind::instantiate)
    /// yields indoor-photovoltaic, body-heat, and kinetic months with the
    /// same shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use reap_harvest::{HarvestSource, SourceKind};
    /// use reap_sim::{Policy, Scenario};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // A September month on a body-heat TEG instead of the solar panel.
    /// let trace = SourceKind::BodyHeat.instantiate(7).generate(244, 30)?;
    /// let report = Scenario::builder(trace)
    ///     .points(reap_device::paper_table2_operating_points())
    ///     .build()?
    ///     .run(Policy::Reap)?;
    /// assert_eq!(report.days(), 30);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn builder(trace: HarvestTrace) -> ScenarioBuilder {
        ScenarioBuilder {
            trace,
            points: Vec::new(),
            alpha: 1.0,
            off_power: Power::from_microwatts(50.0),
            battery: Battery::small_wearable(),
            allocator: AllocatorKind::default(),
            budget_mode: BudgetMode::default(),
            forecaster: ForecasterKind::default(),
            dt_seconds: 3600,
            intermittent: None,
            trace_events: false,
        }
    }

    /// The optimization problem the policies solve each hour.
    #[must_use]
    pub fn problem(&self) -> &ReapProblem {
        &self.problem
    }

    /// The harvest trace driving the scenario.
    #[must_use]
    pub fn trace(&self) -> &HarvestTrace {
        &self.trace
    }

    /// Execution-epoch length in seconds (3600 unless configured via
    /// [`ScenarioBuilder::dt_seconds`]).
    #[must_use]
    pub fn dt_seconds(&self) -> u32 {
        self.dt_seconds
    }

    /// The intermittent-operation configuration, when this is a
    /// batteryless scenario.
    #[must_use]
    pub fn intermittent(&self) -> Option<&IntermittentConfig> {
        self.intermittent.as_ref()
    }

    /// `true` when running this scenario takes the event-driven core
    /// ([`crate::clock`]) instead of the scalar hourly loop: a sub-hour
    /// `dt` or an [`IntermittentConfig`] is set.
    #[must_use]
    pub fn uses_event_core(&self) -> bool {
        self.dt_seconds != 3600 || self.intermittent.is_some()
    }

    /// Runs the scenario on the event-driven core regardless of
    /// configuration, returning the report *plus* the core's event
    /// statistics and energy ledger ([`crate::ClockStats`]).
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::run`], plus rejection of
    /// [`Policy::Intermittent`] on scenarios without an
    /// [`IntermittentConfig`].
    pub fn run_event_driven(&self, policy: Policy) -> Result<crate::VdtRun, SimError> {
        crate::clock::run_event_driven_with_budgets(self, policy, None)
    }

    /// Runs the scenario under a policy, returning the hour-by-hour
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates optimizer failures ([`SimError::Core`]) and rejects
    /// static policies that reference unknown point ids.
    pub fn run(&self, policy: Policy) -> Result<SimReport, SimError> {
        engine::run(self, policy)
    }

    /// Runs REAP and every static point, returning
    /// `(reap, statics-in-problem-order)`. Convenience for comparison
    /// figures; delegates to [`run_matrix`](crate::run_matrix), so the
    /// policies run in parallel against one shared open-loop budget
    /// sequence.
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::run`].
    pub fn run_all(&self) -> Result<(SimReport, Vec<SimReport>), SimError> {
        let mut policies = vec![Policy::Reap];
        policies.extend(self.problem.points().iter().map(|p| Policy::Static(p.id())));
        let mut row = crate::run_matrix(std::slice::from_ref(self), &policies)?
            .pop()
            .expect("one scenario in, one row out");
        let statics = row.split_off(1);
        let reap = row.pop().expect("REAP report");
        Ok((reap, statics))
    }
}

impl ScenarioBuilder {
    /// Sets the operating points (e.g.
    /// `reap_device::paper_table2_operating_points()`).
    #[must_use]
    pub fn points(mut self, points: Vec<OperatingPoint>) -> Self {
        self.points = points;
        self
    }

    /// Sets the optimizer's accuracy/active-time exponent (default 1).
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the off-state power (default 50 µW).
    #[must_use]
    pub fn off_power(mut self, off_power: Power) -> Self {
        self.off_power = off_power;
        self
    }

    /// Sets the battery (default: [`Battery::small_wearable`]).
    #[must_use]
    pub fn battery(mut self, battery: Battery) -> Self {
        self.battery = battery;
        self
    }

    /// Sets the budget allocator policy (default: EWMA).
    #[must_use]
    pub fn allocator(mut self, allocator: AllocatorKind) -> Self {
        self.allocator = allocator;
        self
    }

    /// Sets the budget mode (default: open-loop, the paper's protocol).
    #[must_use]
    pub fn budget_mode(mut self, budget_mode: BudgetMode) -> Self {
        self.budget_mode = budget_mode;
        self
    }

    /// Sets the harvest forecaster feeding [`Policy::Horizon`] (default:
    /// the causal EWMA forecaster). Myopic policies ignore it.
    #[must_use]
    pub fn forecaster(mut self, forecaster: ForecasterKind) -> Self {
        self.forecaster = forecaster;
        self
    }

    /// Sets the event core's execution-epoch length in seconds (default
    /// 3600 = one hour). Must divide an hour evenly. Any value other
    /// than 3600 routes the scenario through the event-driven core.
    #[must_use]
    pub fn dt_seconds(mut self, dt_seconds: u32) -> Self {
        self.dt_seconds = dt_seconds;
        self
    }

    /// Configures batteryless intermittent operation: the scenario runs
    /// on the event core against `config`'s capacitor instead of the
    /// battery, with power-failure + checkpoint/restore semantics.
    #[must_use]
    pub fn intermittent(mut self, config: IntermittentConfig) -> Self {
        self.intermittent = Some(config);
        self
    }

    /// Records the event core's event stream in
    /// [`VdtRun::events`](crate::VdtRun::events) (default off — the log
    /// exists for crash-point harnesses, not production runs).
    #[must_use]
    pub fn trace_events(mut self, trace_events: bool) -> Self {
        self.trace_events = trace_events;
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// [`SimError::Core`] when the operating-point set is invalid (empty,
    /// duplicate ids, bad alpha, ...); [`SimError::InvalidParameter`] for
    /// a non-finite or negative oracle forecast error, or a `dt_seconds`
    /// that does not divide an hour evenly.
    pub fn build(self) -> Result<Scenario, SimError> {
        if let ForecasterKind::Oracle { rel_error, .. } = self.forecaster {
            if !rel_error.is_finite() || rel_error < 0.0 {
                return Err(SimError::InvalidParameter(format!(
                    "oracle forecast error {rel_error} must be finite and non-negative"
                )));
            }
        }
        if self.dt_seconds == 0 || 3600 % self.dt_seconds != 0 {
            return Err(SimError::InvalidParameter(format!(
                "dt_seconds {} must divide an hour (3600) evenly",
                self.dt_seconds
            )));
        }
        let problem = ReapProblem::builder()
            .alpha(self.alpha)
            .off_power(self.off_power)
            .points(self.points)
            .build()?;
        Ok(Scenario {
            trace: self.trace,
            problem,
            battery: self.battery,
            allocator: self.allocator,
            budget_mode: self.budget_mode,
            forecaster: self.forecaster,
            dt_seconds: self.dt_seconds,
            intermittent: self.intermittent,
            trace_events: self.trace_events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_harvest::HarvestTrace;

    fn points() -> Vec<OperatingPoint> {
        vec![
            OperatingPoint::new(1, "DP1", 0.94, Power::from_milliwatts(2.76)).unwrap(),
            OperatingPoint::new(5, "DP5", 0.76, Power::from_milliwatts(1.20)).unwrap(),
        ]
    }

    #[test]
    fn builder_produces_runnable_scenario() {
        let s = Scenario::builder(HarvestTrace::september_like(1))
            .points(points())
            .alpha(2.0)
            .allocator(AllocatorKind::Greedy)
            .build()
            .unwrap();
        assert_eq!(s.problem().alpha(), 2.0);
        assert_eq!(s.trace().days(), 30);
    }

    #[test]
    fn empty_points_fail_at_build() {
        let err = Scenario::builder(HarvestTrace::september_like(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::Core(_)));
    }

    #[test]
    fn forecaster_kinds_instantiate_and_validate() {
        let trace = HarvestTrace::september_like(1);
        for kind in [
            ForecasterKind::Ewma,
            ForecasterKind::Oracle {
                rel_error: 0.2,
                seed: 7,
            },
        ] {
            assert!(!kind.instantiate(&trace).name().is_empty());
        }
        // The perfect oracle reproduces the trace it wraps.
        let oracle = ForecasterKind::Oracle {
            rel_error: 0.0,
            seed: 0,
        }
        .instantiate(&trace);
        let window = oracle.forecast(0, trace.len_hours());
        assert_eq!(window, trace.iter().collect::<Vec<_>>());
        // Degenerate error levels are rejected at build time.
        let err = Scenario::builder(HarvestTrace::september_like(1))
            .points(points())
            .forecaster(ForecasterKind::Oracle {
                rel_error: -0.5,
                seed: 0,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter(_)));
    }

    #[test]
    fn allocator_kinds_instantiate() {
        for kind in [
            AllocatorKind::Ewma,
            AllocatorKind::Greedy,
            AllocatorKind::UniformDaily,
        ] {
            assert!(!kind.instantiate().name().is_empty());
        }
    }
}
