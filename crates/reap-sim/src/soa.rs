//! The data-oriented fleet core: struct-of-arrays hour stepping.
//!
//! The scalar engine (`crate::engine`) simulates one user at a time,
//! with per-user heap state (boxed allocator, `Schedule`s, an
//! `HourRecord` per hour). That is the right shape for replaying one
//! user; it is the wrong shape for a million. This module batches the
//! **entire population through each simulated hour**:
//!
//! * fleet state lives in flat arrays (battery joules, EWMA slots,
//!   accumulators as `Vec<f64>`; cohort ids as `Vec<u32>`), stepped by
//!   tight per-hour kernels that allocate nothing per user;
//! * users sharing `(operating points, alpha)` form a *cohort* and
//!   resolve through one cached [`FrontierTable`](reap_core::FrontierTable)
//!   — the frontier build is
//!   shared and each hourly budget lookup is a pointer-free linear
//!   interpolation ([`reap_core::FrontierTable::eval`]);
//! * users on the same harvest source share one base trace and store
//!   only their [`TracePerturbation`](reap_harvest::TracePerturbation)
//!   (16 bytes) instead of a materialized month;
//! * users are processed in shards
//!   ([`FleetBuilder::shard_users`](crate::FleetBuilder::shard_users)):
//!   one shard's state walks all
//!   hours before the next shard starts, so the working set stays
//!   cache-resident, and shards parallelize across worker threads.
//!
//! Every per-user arithmetic step replicates the scalar engine's
//! operations in the same order on the same values, so per-user outcomes
//! are bit-identical to [`Fleet::user_scenario`] replay — a property the
//! `soa_equivalence` tests pin (to 1e-12, though in practice exact).
//! [`Policy::Horizon`] is the exception: its joint LP keeps genuinely
//! per-user state, so the fleet falls back to the scalar engine for it.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use reap_core::{OperatingPoint, ReapProblem};
use reap_harvest::{Battery, SourceKind};
use reap_units::Power;

use crate::engine::Policy;
use crate::fleet::Fleet;
use crate::{AllocatorKind, SimError};

/// The EWMA allocator's smoothing factor (`EwmaAllocator::new`).
const EWMA_ALPHA: f64 = 0.5;
/// The EWMA / uniform-daily allocators' battery gain.
const BATTERY_GAIN: f64 = 0.1;
/// The greedy allocator's battery gain.
const GREEDY_GAIN: f64 = 0.25;
/// The engine's brownout tolerance: a delivery within 1e-12 J of the
/// deficit still counts as a fully realized hour.
const BROWNOUT_EPS_J: f64 = 1e-12;
/// `Schedule::new` drops allocations at or below this duration.
const DROP_S: f64 = 1e-6;

/// Per-user final scalars of one fleet run — exactly what
/// [`FleetReport`](crate::FleetReport) aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UserOutcome {
    /// Mean realized accuracy per hour (`SimReport::mean_accuracy`).
    pub accuracy: f64,
    /// Realized active time over the whole trace duration, in `[0, 1]`.
    pub active_fraction: f64,
    /// Hours in which the user's plan browned out.
    pub brownout_hours: u32,
    /// Total energy harvested over the trace, in joules.
    pub harvested_j: f64,
}

/// The per-cohort scalars a [`Policy::Static`] plan needs.
#[derive(Debug, Clone, Copy)]
struct StaticPoint {
    acc: f64,
    power_w: f64,
    marginal_w: f64,
}

/// A cohort's plan in one of the two constant regimes of its frontier:
/// at the budget floor (every sub-floor budget clamps up to it) or at
/// saturation (every budget at or above the last breakpoint buys the
/// same plan). Most simulated hours land in one of the two — dark hours
/// pin the budget to the floor, bright hours overshoot the frontier — so
/// the plan pass resolves them from this cache without touching the
/// frontier arena.
#[derive(Debug, Clone, Copy)]
struct CachedPlan {
    acc: f64,
    act_s: f64,
    pen_j: f64,
}

/// One frontier breakpoint in the cohort vertex arena:
/// [`reap_core::FrontierTable`]'s per-vertex columns interleaved, so one
/// budget eval touches a single contiguous ~200-byte run instead of five
/// heap arrays behind a table pointer.
#[derive(Debug, Clone, Copy)]
struct Vert {
    budget: f64,
    acc: f64,
    pow_w: f64,
    id: u8,
    has: bool,
}

/// A contiguous run of permuted users sharing `(base trace, phase)`, so
/// the hour kernel hoists the base-trace lookup out of the user loop.
#[derive(Debug, Clone, Copy)]
struct Group {
    start: usize,
    end: usize,
    trace: u32,
    phase: u32,
}

/// How the hour kernel plans: the cohort frontier vertex arena for REAP,
/// cohort point scalars for the statics, or not at all (scalar fallback).
#[derive(Debug)]
enum PlanKernel {
    Reap,
    Static(Vec<StaticPoint>),
    Scalar,
}

/// A fleet flattened into struct-of-arrays form, ready to step every
/// user through each simulated hour.
///
/// Built once per run from a [`Fleet`] (cohort deduplication, base-trace
/// generation, and the user permutation all happen here); [`SoaFleet::run`]
/// afterwards touches only flat arrays. Population statistics
/// ([`SoaFleet::cohorts`], [`SoaFleet::bytes_per_user`]) are available
/// whether or not the policy runs on the SoA kernels.
#[derive(Debug)]
pub struct SoaFleet {
    users: usize,
    hours: usize,
    days: u32,
    shard_users: usize,
    allocator: AllocatorKind,
    kernel: PlanKernel,
    // Problem constants (identical across cohorts: the fleet fixes the
    // off power and period for every user).
    floor_j: f64,
    tp_s: f64,
    off_w: f64,
    // Battery constants (every fleet user starts from the same battery).
    cap_j: f64,
    init_j: f64,
    eff_c: f64,
    eff_d: f64,
    /// Shared base traces in joules, one per distinct source kind used.
    traces: Vec<Vec<f64>>,
    /// Permuted position -> original user index.
    perm: Vec<u32>,
    /// Per permuted position: trace gain.
    gain: Vec<f64>,
    /// Per permuted position: cohort id.
    cohort: Vec<u32>,
    /// Contiguous `(trace, phase)` runs over permuted positions.
    groups: Vec<Group>,
    /// Frontier vertices of every REAP cohort, one interleaved arena.
    /// Cohorts are numbered in permuted first-use order, so the hour
    /// kernel reads this in ascending offsets across a shard.
    verts: Vec<Vert>,
    /// Per cohort: its vertex run is `verts[vert_off[c]..vert_off[c+1]]`
    /// (`cohorts + 1` entries; empty unless the kernel is REAP).
    vert_off: Vec<u32>,
    /// Per cohort: the plan at the budget floor.
    floor_plan: Vec<CachedPlan>,
    /// Per cohort: the plan at frontier saturation.
    sat_plan: Vec<CachedPlan>,
    /// Per cohort: the saturation budget (`f64::INFINITY` disables the
    /// fast path, e.g. for static plans whose cap is rounding-sensitive).
    sat_budget: Vec<f64>,
    cohorts: u32,
    bytes_per_user: u32,
}

impl SoaFleet {
    /// Flattens `fleet` into SoA form: generates the shared base traces,
    /// derives every user's parameters, deduplicates cohorts (building
    /// one frontier table or static point per cohort), and sorts users
    /// into `(source, phase)` groups.
    ///
    /// # Errors
    ///
    /// Propagates harvest/optimizer construction failures, exactly as
    /// per-user [`Fleet::user_scenario`] construction would.
    pub fn new(fleet: &Fleet) -> Result<SoaFleet, SimError> {
        let users = fleet.users as usize;
        let hours = fleet.days as usize * 24;

        // One shared base trace per distinct source kind, in first-use
        // order; per-slot indirection covers repeated kinds.
        let mut kinds: Vec<SourceKind> = Vec::new();
        let mut slot_trace: Vec<u32> = Vec::with_capacity(fleet.sources.len());
        for &kind in &fleet.sources {
            let idx = match kinds.iter().position(|&k| k == kind) {
                Some(i) => i,
                None => {
                    kinds.push(kind);
                    kinds.len() - 1
                }
            };
            slot_trace.push(idx as u32);
        }
        let mut traces: Vec<Vec<f64>> = Vec::with_capacity(kinds.len());
        for &kind in &kinds {
            let base = fleet.base_trace(kind)?;
            traces.push(base.iter().map(|e| e.joules()).collect());
        }

        // Per-user parameters and cohort deduplication. The cohort key is
        // the exact bit pattern of (alpha, per-point id/accuracy/power):
        // cohort mates share every input of the frontier build.
        let wants_tables = matches!(fleet.policy, Policy::Reap | Policy::Static(_))
            && fleet.intermittent.is_none()
            && fleet.dt_seconds == 3600;
        let mut cohort_map: BTreeMap<Vec<u64>, u32> = BTreeMap::new();
        let mut cohort_params: Vec<(f64, Vec<OperatingPoint>)> = Vec::new();
        let mut gain_user = vec![0.0f64; users];
        let mut phase_user = vec![0u32; users];
        let mut cohort_user = vec![0u32; users];
        for u in 0..users {
            let params = fleet.user_params(u as u32)?;
            gain_user[u] = params.perturbation.gain();
            phase_user[u] = params.perturbation.phase_hours();
            let mut key = Vec::with_capacity(1 + 3 * params.points.len());
            key.push(params.alpha.to_bits());
            for p in &params.points {
                key.push(u64::from(p.id()));
                key.push(p.accuracy().to_bits());
                key.push(p.power().watts().to_bits());
            }
            cohort_user[u] = match cohort_map.get(&key) {
                Some(&id) => id,
                None => {
                    let id = cohort_map.len() as u32;
                    cohort_params.push((params.alpha, params.points));
                    cohort_map.insert(key, id);
                    id
                }
            };
        }
        let cohorts = cohort_map.len() as u32;

        // Permute users so same-(source, phase) runs are contiguous: the
        // kernel then reads one base-trace hour per run instead of per
        // user. Per-user arithmetic is order-independent, so this cannot
        // change any outcome bit.
        let mut perm: Vec<u32> = (0..fleet.users).collect();
        let slots = fleet.sources.len() as u32;
        perm.sort_by_key(|&u| (u % slots, phase_user[u as usize], u));
        let gain: Vec<f64> = perm.iter().map(|&u| gain_user[u as usize]).collect();

        // Renumber cohorts by first use in *permuted* order: every
        // cohort-indexed array (vertex arena, cached plans) is then read
        // in ascending offsets as the hour kernel walks a shard —
        // streaming access instead of scattered. A pure renaming, so no
        // outcome bit can change.
        let mut old2new = vec![u32::MAX; cohorts as usize];
        let mut order: Vec<u32> = Vec::with_capacity(cohorts as usize);
        for &u in &perm {
            let oc = cohort_user[u as usize] as usize;
            if old2new[oc] == u32::MAX {
                old2new[oc] = order.len() as u32;
                order.push(oc as u32);
            }
        }
        let cohort: Vec<u32> = perm
            .iter()
            .map(|&u| old2new[cohort_user[u as usize] as usize])
            .collect();
        let mut groups: Vec<Group> = Vec::new();
        for (pos, &u) in perm.iter().enumerate() {
            let trace = slot_trace[(u % slots) as usize];
            let phase = phase_user[u as usize];
            match groups.last_mut() {
                Some(g) if g.trace == trace && g.phase == phase => g.end = pos + 1,
                _ => groups.push(Group {
                    start: pos,
                    end: pos + 1,
                    trace,
                    phase,
                }),
            }
        }

        let battery = Battery::small_wearable();
        let eff_d = battery.discharge_efficiency();

        // Build every cohort's plan data in renumbered order: the shared
        // frontier vertex arena plus the two constant plan regimes (see
        // [`CachedPlan`]). The cached plans are plain `FrontierTable`
        // eval results, so resolving an hour from them is bit-identical
        // to evaluating the table at any budget in the regime.
        let mut floor_j = Power::from_microwatts(50.0).watts() * 3600.0;
        let mut tp_s = 3600.0;
        let mut off_w = Power::from_microwatts(50.0).watts();
        let mut verts: Vec<Vert> = Vec::new();
        let mut vert_off: Vec<u32> = Vec::new();
        let mut statics: Vec<StaticPoint> = Vec::new();
        let mut floor_plan = Vec::with_capacity(cohorts as usize);
        let mut sat_plan = Vec::with_capacity(cohorts as usize);
        let mut sat_budget = Vec::with_capacity(cohorts as usize);
        let cache = |pe: reap_core::PlanEval| CachedPlan {
            acc: pe.accuracy,
            act_s: pe.active_s,
            pen_j: pe.energy_j,
        };
        if wants_tables {
            for &oc in &order {
                let (alpha, points) = &cohort_params[oc as usize];
                let problem = ReapProblem::builder()
                    .alpha(*alpha)
                    .off_power(Power::from_microwatts(50.0))
                    .points(points.clone())
                    .build()?;
                floor_j = problem.min_budget().joules();
                tp_s = problem.period().seconds();
                off_w = problem.off_power().watts();
                match fleet.policy {
                    Policy::Reap => {
                        let t = problem.frontier().table();
                        vert_off.push(verts.len() as u32);
                        for k in 0..t.len() {
                            let (budget, acc, pow_w, id, has) = t.vertex(k);
                            verts.push(Vert {
                                budget,
                                acc,
                                pow_w,
                                id,
                                has,
                            });
                        }
                        floor_plan.push(cache(t.eval(floor_j)));
                        let sb = t.max_budget_j();
                        sat_plan.push(cache(t.eval(sb)));
                        sat_budget.push(sb);
                    }
                    Policy::Static(pid) => {
                        let p = problem.point(pid)?;
                        statics.push(StaticPoint {
                            acc: p.accuracy(),
                            power_w: p.power().watts(),
                            marginal_w: p.power().watts() - off_w,
                        });
                        // At the floor the clamped on-time is exactly
                        // zero, so the schedule drops the point and only
                        // the off power burns: the same scalars the
                        // inline formula produces.
                        let plan = CachedPlan {
                            acc: 0.0,
                            act_s: 0.0,
                            pen_j: off_w * tp_s,
                        };
                        floor_plan.push(plan);
                        sat_plan.push(plan);
                        // The static saturation threshold depends on
                        // division rounding; stay on the exact inline
                        // formula instead.
                        sat_budget.push(f64::INFINITY);
                    }
                    Policy::Horizon { .. } | Policy::Intermittent => {
                        unreachable!("gated by wants_tables")
                    }
                }
            }
            vert_off.push(verts.len() as u32);
        }
        let kernel = match fleet.policy {
            Policy::Reap if wants_tables => PlanKernel::Reap,
            Policy::Static(_) if wants_tables => PlanKernel::Static(statics),
            _ => PlanKernel::Scalar,
        };

        let mut soa = SoaFleet {
            users,
            hours,
            days: fleet.days,
            shard_users: fleet.shard_users.get(),
            allocator: fleet.allocator,
            kernel,
            floor_j,
            tp_s,
            off_w,
            cap_j: battery.capacity().joules(),
            init_j: battery.level().joules(),
            eff_c: battery.charge_efficiency(),
            eff_d,
            traces,
            perm,
            gain,
            cohort,
            groups,
            verts,
            vert_off,
            floor_plan,
            sat_plan,
            sat_budget,
            cohorts,
            bytes_per_user: 0,
        };
        soa.bytes_per_user = soa.compute_bytes_per_user();
        Ok(soa)
    }

    /// Number of distinct `(operating points, alpha)` cohorts.
    #[must_use]
    pub fn cohorts(&self) -> u32 {
        self.cohorts
    }

    /// Resident SoA bytes per user: per-user parameter and state arrays,
    /// plus the shared base traces and cohort tables amortized over the
    /// population. Rounded up.
    #[must_use]
    pub fn bytes_per_user(&self) -> u32 {
        self.bytes_per_user
    }

    /// `true` when the configured policy runs on the SoA kernels
    /// ([`Policy::Reap`] / [`Policy::Static`] on an hourly battery);
    /// `false` for the scalar fallback ([`Policy::Horizon`], any
    /// intermittent or sub-hour fleet).
    #[must_use]
    pub fn supports_policy(&self) -> bool {
        !matches!(self.kernel, PlanKernel::Scalar)
    }

    fn compute_bytes_per_user(&self) -> u32 {
        let f = std::mem::size_of::<f64>();
        // Parameters: perm + gain + cohort.
        let mut per_user = 4 + f + 4;
        // Run state: real/virtual battery, last harvest, three f64
        // accumulators, brownout counter.
        per_user += 6 * f + 4;
        // Allocator state.
        per_user += match self.allocator {
            AllocatorKind::Ewma => 24 * f + f, // slots + seeding sum
            AllocatorKind::UniformDaily => 24 * f,
            AllocatorKind::Greedy => 0,
        };
        per_user += std::mem::size_of::<UserOutcome>();
        let mut shared = self.traces.iter().map(|t| t.len() * f).sum::<usize>();
        shared += self.groups.len() * std::mem::size_of::<Group>();
        match &self.kernel {
            PlanKernel::Reap => {
                shared += self.verts.len() * std::mem::size_of::<Vert>() + self.vert_off.len() * 4;
            }
            PlanKernel::Static(statics) => {
                shared += statics.len() * std::mem::size_of::<StaticPoint>();
            }
            PlanKernel::Scalar => {}
        }
        shared += (self.floor_plan.len() + self.sat_plan.len()) * std::mem::size_of::<CachedPlan>()
            + self.sat_budget.len() * f;
        let total = per_user * self.users + shared;
        total.div_ceil(self.users).min(u32::MAX as usize) as u32
    }

    /// Steps every user through every hour, returning per-user outcomes
    /// in **original user order**. Shards run across up to `max_threads`
    /// workers (`None` = available parallelism); outcomes are
    /// bit-identical for every thread count and every shard size.
    ///
    /// # Panics
    ///
    /// Panics when the policy needs the scalar fallback
    /// (`!self.supports_policy()`); [`Fleet::run`] routes those runs to
    /// the scalar engine instead.
    #[must_use]
    pub fn run(&self, max_threads: Option<NonZeroUsize>) -> Vec<UserOutcome> {
        assert!(
            self.supports_policy(),
            "SoA kernels do not cover this policy; use the scalar engine"
        );
        let shard = self.shard_users;
        let shards: Vec<(usize, usize)> = (0..self.users)
            .step_by(shard)
            .map(|a| (a, (a + shard).min(self.users)))
            .collect();
        let threads = max_threads
            .map(NonZeroUsize::get)
            .or_else(|| {
                std::thread::available_parallelism()
                    .ok()
                    .map(NonZeroUsize::get)
            })
            .unwrap_or(1)
            .min(shards.len());

        let mut out = vec![UserOutcome::default(); self.users];
        if threads <= 1 {
            for &(a, b) in &shards {
                self.scatter(&mut out, a, self.run_shard(a, b));
            }
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Vec<UserOutcome>>>> =
                shards.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(a, b)) = shards.get(s) else { break };
                        let shard_out = self.run_shard(a, b);
                        *slots[s].lock().expect("shard slot poisoned") = Some(shard_out);
                    });
                }
            });
            for (&(a, _), slot) in shards.iter().zip(slots) {
                let shard_out = slot
                    .into_inner()
                    .expect("shard slot poisoned")
                    .expect("every shard index was claimed by a worker");
                self.scatter(&mut out, a, shard_out);
            }
        }
        out
    }

    /// Writes a shard's outcomes (permuted positions `a..`) back to
    /// original user indices.
    fn scatter(&self, out: &mut [UserOutcome], a: usize, shard_out: Vec<UserOutcome>) {
        for (j, o) in shard_out.into_iter().enumerate() {
            out[self.perm[a + j] as usize] = o;
        }
    }

    /// Steps permuted positions `[a, b)` through every hour. All state is
    /// shard-local and heap-allocated once, before the hour loop.
    #[allow(clippy::too_many_lines)]
    fn run_shard(&self, a: usize, b: usize) -> Vec<UserOutcome> {
        let nu = b - a;
        let gain = &self.gain[a..b];
        let cohort = &self.cohort[a..b];
        // Groups clipped to this shard, rebased to shard-local indices.
        let groups: Vec<Group> = self
            .groups
            .iter()
            .filter(|g| g.start < b && g.end > a)
            .map(|g| Group {
                start: g.start.max(a) - a,
                end: g.end.min(b) - a,
                trace: g.trace,
                phase: g.phase,
            })
            .collect();

        // Mutable per-user state, flat.
        let mut bat = vec![self.init_j; nu];
        let mut vbat = vec![self.init_j; nu];
        let mut last_h = vec![0.0f64; nu];
        let mut acc_sum = vec![0.0f64; nu];
        let mut act_sum = vec![0.0f64; nu];
        let mut harv_sum = vec![0.0f64; nu];
        let mut brow = vec![0u32; nu];
        // EWMA slots, slot-major (`est[slot * nu + u]`), plus the running
        // seeded-slot sum backing the cold-start mean.
        let mut est = match self.allocator {
            AllocatorKind::Ewma => vec![0.0f64; 24 * nu],
            _ => Vec::new(),
        };
        let mut est_sum = match self.allocator {
            AllocatorKind::Ewma => vec![0.0f64; nu],
            _ => Vec::new(),
        };
        // Uniform-daily window, user-major (`win[u * 24 + slot]`).
        let mut win = match self.allocator {
            AllocatorKind::UniformDaily => vec![0.0f64; 24 * nu],
            _ => Vec::new(),
        };

        let (cap_j, eff_c, eff_d) = (self.cap_j, self.eff_c, self.eff_d);
        let vtarget_j = cap_j * 0.5;
        let floor_j = self.floor_j;
        let tp = self.tp_s;
        let off_w = self.off_w;

        // Per-hour stage temporaries: budgets out of the allocator pass,
        // plan scalars out of the plan pass. Splitting the hour into
        // array passes keeps the allocator and execute loops free of
        // data-dependent branches (each engine conditional merges: its
        // untaken side contributes exactly zero, see the stage comments),
        // which lets them vectorize; only the plan pass stays scalar.
        let mut budget_t = vec![0.0f64; nu];
        let mut pacc_t = vec![0.0f64; nu];
        let mut pact_t = vec![0.0f64; nu];
        let mut pen_t = vec![0.0f64; nu];

        for i in 0..self.hours {
            let day = i / 24;
            let hod = i % 24;

            // EWMA observe pass: every user folds last hour's harvest
            // into the previous slot — seeding it on the first day,
            // blending afterwards (`EwmaAllocator::allocate`). The very
            // first call carries no real sample and is discarded.
            if matches!(self.allocator, AllocatorKind::Ewma) && i >= 1 {
                let prev = (hod + 23) % 24;
                let est_prev = &mut est[prev * nu..prev * nu + nu];
                if i >= 25 {
                    for (e, &h) in est_prev.iter_mut().zip(&last_h) {
                        *e = (1.0 - EWMA_ALPHA) * *e + EWMA_ALPHA * h;
                    }
                } else {
                    for ((e, s), &h) in est_prev.iter_mut().zip(&mut est_sum).zip(&last_h) {
                        *e = h;
                        *s += h;
                    }
                }
            }

            // Stage 1: allocator proposal against the *virtual* battery,
            // open-loop clamp and virtual charge/spend
            // (`open_loop_budgets`), one branch-free loop per
            // `(trace, phase)` group and allocator regime. The engine's
            // conditionals merge bit-exactly: a zero-harvest charge
            // stores exactly `+0.0`, and a floor budget divides to
            // exactly `floor_j / eff_d`, so the unconditional forms
            // change no bit.
            macro_rules! step1 {
                ($u:expr, $base_e:expr, $expected:expr, $cg:expr) => {{
                    let u = $u;
                    let h = $base_e * gain[u];
                    let correction = (vbat[u] - vtarget_j) * $cg;
                    let proposed = ($expected + correction).max(0.0);
                    let avail = vbat[u] * eff_d + h;
                    let budget = proposed.min(avail).max(floor_j.min(avail));
                    vbat[u] += (h * eff_c).min(cap_j - vbat[u]);
                    let vdrawn = (budget / eff_d).min(vbat[u]);
                    vbat[u] -= vdrawn;
                    last_h[u] = h;
                    budget_t[u] = budget;
                }};
            }
            // Index loops, not zipped iterators: `step1!` writes six
            // columns at `u` and per-regime inputs read one more.
            #[allow(clippy::needless_range_loop)]
            for g in &groups {
                let src = (hod as u32 + g.phase) % 24;
                let base_e = self.traces[g.trace as usize][day * 24 + src as usize];
                let (lo, hi) = (g.start, g.end);
                match self.allocator {
                    AllocatorKind::Ewma if i >= 24 => {
                        // This hour's slot estimates, hoisted: the slot
                        // index is fixed across the shard all hour.
                        let est_cur = &est[hod * nu..hod * nu + nu];
                        for u in lo..hi {
                            step1!(u, base_e, est_cur[u], BATTERY_GAIN);
                        }
                    }
                    AllocatorKind::Ewma if i == 0 => {
                        // The discarded first call expects nothing.
                        for u in lo..hi {
                            step1!(u, base_e, 0.0, BATTERY_GAIN);
                        }
                    }
                    AllocatorKind::Ewma => {
                        // Unseen slot: mean of the seeded slots (the sum
                        // accumulates in ascending slot order).
                        let i_f = i as f64;
                        for u in lo..hi {
                            step1!(u, base_e, est_sum[u] / i_f, BATTERY_GAIN);
                        }
                    }
                    AllocatorKind::Greedy => {
                        for u in lo..hi {
                            step1!(u, base_e, last_h[u], GREEDY_GAIN);
                        }
                    }
                    AllocatorKind::UniformDaily => {
                        let divisor = if i >= 23 { 24.0 } else { (i + 1) as f64 };
                        for u in lo..hi {
                            let w = &mut win[u * 24..u * 24 + 24];
                            w[hod] = last_h[u];
                            let daily: f64 = w.iter().sum();
                            step1!(u, base_e, daily / divisor, BATTERY_GAIN);
                        }
                    }
                }
            }

            // Stage 2: plan. Most hours land in a constant frontier
            // regime (floor or saturation) and resolve from the cohort
            // cache; the rest take the full frontier eval (REAP) or the
            // static duty-cycle formula. All three produce the scalar
            // engine's schedule scalars bit for bit.
            match &self.kernel {
                PlanKernel::Reap => {
                    for u in 0..nu {
                        let c = cohort[u] as usize;
                        let budget = budget_t[u];
                        let (pacc, pact, pen) = if budget <= floor_j {
                            let p = self.floor_plan[c];
                            (p.acc, p.act_s, p.pen_j)
                        } else if budget >= self.sat_budget[c] {
                            let p = self.sat_plan[c];
                            (p.acc, p.act_s, p.pen_j)
                        } else {
                            let lo = self.vert_off[c] as usize;
                            let hi = self.vert_off[c + 1] as usize;
                            let verts = &self.verts[lo..hi];
                            // The first frontier segment — an off vertex
                            // at the floor blending into the cheapest
                            // point — absorbs nearly every interior
                            // budget (~94% in the bench fleet), so it
                            // gets a straight-line transliteration of
                            // [`eval_verts`] for exactly that vertex
                            // shape; everything else takes the general
                            // walk.
                            let seg0 = verts.len() >= 2
                                && budget < verts[1].budget
                                && !verts[0].has
                                && verts[1].has;
                            if seg0 {
                                let lo_b = verts[0].budget;
                                let lambda =
                                    ((budget - lo_b) / (verts[1].budget - lo_b)).clamp(0.0, 1.0);
                                let t = lambda * tp;
                                let off_s = (tp - t).max(0.0);
                                if lambda > 0.0 && t > DROP_S {
                                    (
                                        verts[1].acc * (t / tp),
                                        t,
                                        verts[1].pow_w * t + off_w * off_s,
                                    )
                                } else {
                                    (0.0, 0.0, off_w * off_s)
                                }
                            } else {
                                eval_verts(verts, floor_j, tp, off_w, budget)
                            }
                        };
                        pacc_t[u] = pacc;
                        pact_t[u] = pact;
                        pen_t[u] = pen;
                    }
                }
                PlanKernel::Static(statics) => {
                    for u in 0..nu {
                        let c = cohort[u] as usize;
                        let sp = statics[c];
                        let eff = budget_t[u].max(floor_j);
                        let t_on = ((eff - floor_j) / sp.marginal_w).clamp(0.0, tp);
                        let off_s = tp - t_on;
                        let (pacc, pact, pen) = if t_on > DROP_S {
                            (
                                sp.acc * (t_on / tp),
                                t_on,
                                sp.power_w * t_on + off_w * off_s,
                            )
                        } else {
                            (0.0, 0.0, off_w * off_s)
                        };
                        pacc_t[u] = pacc;
                        pact_t[u] = pact;
                        pen_t[u] = pen;
                    }
                }
                PlanKernel::Scalar => unreachable!("checked in run()"),
            }

            // Stage 3: execute — harvest first, then the real battery,
            // browning out proportionally (`run_with_budgets`). The
            // engine's charge/deficit branches merge: on a charging hour
            // the deficit is exactly zero (so the discharge is a no-op)
            // and vice versa, making the loop branch-free and the
            // arithmetic bit-identical either way.
            for u in 0..nu {
                let h = last_h[u];
                let pen = pen_t[u];
                let stored = ((h - pen).max(0.0) * eff_c).min(cap_j - bat[u]);
                bat[u] += stored;
                let deficit = (pen - h).max(0.0);
                let drawn = (deficit / eff_d).min(bat[u]);
                bat[u] -= drawn;
                let delivered = drawn * eff_d;
                let rf = if delivered + BROWNOUT_EPS_J < deficit {
                    if pen > 0.0 {
                        ((h + delivered) / pen).clamp(0.0, 1.0)
                    } else {
                        1.0
                    }
                } else {
                    1.0
                };
                acc_sum[u] += pacc_t[u] * rf;
                act_sum[u] += pact_t[u] * rf;
                brow[u] += u32::from(rf < 1.0);
                harv_sum[u] += h;
            }
        }

        let hours_f = self.hours as f64;
        let trace_hours = f64::from(self.days) * 24.0;
        (0..nu)
            .map(|u| UserOutcome {
                accuracy: acc_sum[u] / hours_f,
                active_fraction: (act_sum[u] / 3600.0) / trace_hours,
                brownout_hours: brow[u],
                harvested_j: harv_sum[u],
            })
            .collect()
    }
}

/// Evaluates a cohort's frontier at `budget_j` from its arena slice:
/// [`reap_core::FrontierTable::eval`] transliterated onto the interleaved
/// vertices, returning the same `(accuracy, active_s, energy_j)` bit for
/// bit (the `soa_equivalence` proptests pin this against the scalar
/// engine, which plans through the original frontier).
#[inline]
fn eval_verts(
    verts: &[Vert],
    min_budget_j: f64,
    tp: f64,
    off_w: f64,
    budget_j: f64,
) -> (f64, f64, f64) {
    // `f64::max` maps NaN to the floor too, matching `Energy::max`.
    let b = budget_j.max(min_budget_j);
    let last = verts.len() - 1;
    let (k, lambda) = if last == 0 {
        (0, 0.0)
    } else if b >= verts[last].budget {
        (last - 1, 1.0)
    } else {
        // First vertex with budget > b. The table walks a data-dependent
        // `while`; counting over the ascending budgets lands on the same
        // index without the unpredictable branch.
        let mut cnt = 0usize;
        for v in &verts[1..last] {
            cnt += usize::from(v.budget <= b);
        }
        let hi = 1 + cnt;
        let lo_b = verts[hi - 1].budget;
        (
            hi - 1,
            ((b - lo_b) / (verts[hi].budget - lo_b)).clamp(0.0, 1.0),
        )
    };
    let hi_idx = (k + 1).min(last);

    // Durations exactly as `PlanFrontier::solve` pushes them; the off
    // time complements the *raw* active time (drops below come after).
    let mut n = 0usize;
    let mut dur = [0.0f64; 2];
    let mut acc = [0.0f64; 2];
    let mut pow = [0.0f64; 2];
    let mut ids = [0u8; 2];
    let mut active_raw = 0.0;
    if verts[k].has {
        let t = (1.0 - lambda) * tp;
        active_raw += t;
        dur[n] = t;
        acc[n] = verts[k].acc;
        pow[n] = verts[k].pow_w;
        ids[n] = verts[k].id;
        n = 1;
    }
    if lambda > 0.0 && verts[hi_idx].has {
        let t = lambda * tp;
        active_raw += t;
        dur[n] = t;
        acc[n] = verts[hi_idx].acc;
        pow[n] = verts[hi_idx].pow_w;
        ids[n] = verts[hi_idx].id;
        n += 1;
    }
    let off_s = (tp - active_raw).max(0.0);

    // `Schedule::new` sorts by point id and drops sub-microsecond
    // allocations; the sums below run in the same (id) order.
    if n == 2 && ids[1] < ids[0] {
        dur.swap(0, 1);
        acc.swap(0, 1);
        pow.swap(0, 1);
    }
    let mut accuracy = 0.0;
    let mut active_s = 0.0;
    let mut active_e = 0.0;
    for j in 0..n {
        if dur[j] > DROP_S {
            accuracy += acc[j] * (dur[j] / tp);
            active_s += dur[j];
            active_e += pow[j] * dur[j];
        }
    }
    (accuracy, active_s, active_e + off_w * off_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_core::OperatingPoint;

    fn base_points() -> Vec<OperatingPoint> {
        vec![
            OperatingPoint::new(1, "DP1", 0.94, Power::from_milliwatts(2.76)).unwrap(),
            OperatingPoint::new(5, "DP5", 0.76, Power::from_milliwatts(1.20)).unwrap(),
        ]
    }

    fn fleet(users: u32, days: u32) -> Fleet {
        Fleet::builder(base_points())
            .users(users)
            .days(days)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn cohorts_collapse_when_the_population_is_uniform() {
        // No accuracy spread and a pinned alpha: every user shares one
        // frontier.
        let f = Fleet::builder(base_points())
            .users(16)
            .days(1)
            .accuracy_spread(0.0)
            .alpha_range(1.0, 1.0)
            .build()
            .unwrap();
        let soa = SoaFleet::new(&f).unwrap();
        assert_eq!(soa.cohorts(), 1);
        // Default spread: every user is its own cohort.
        let soa = SoaFleet::new(&fleet(16, 1)).unwrap();
        assert_eq!(soa.cohorts(), 16);
        assert!(soa.bytes_per_user() > 0);
    }

    #[test]
    fn soa_outcomes_are_thread_count_invariant() {
        let f = fleet(23, 2);
        let soa = SoaFleet::new(&f).unwrap();
        let one = soa.run(Some(NonZeroUsize::MIN));
        for threads in [2usize, 4, 7] {
            let many = soa.run(Some(NonZeroUsize::new(threads).unwrap()));
            assert_eq!(one, many, "{threads}-thread SoA run diverged");
        }
    }

    #[test]
    fn horizon_policy_reports_scalar_fallback() {
        let f = Fleet::builder(base_points())
            .users(4)
            .days(1)
            .policy(Policy::Horizon { lookahead: 6 })
            .build()
            .unwrap();
        let soa = SoaFleet::new(&f).unwrap();
        assert!(!soa.supports_policy());
        assert_eq!(soa.cohorts(), 4);
    }
}
