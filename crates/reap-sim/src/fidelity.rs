//! Classifier-in-the-loop execution.
//!
//! The statistical machinery elsewhere in this crate treats a design
//! point's accuracy as a fixed number `a_i`. This module closes the last
//! gap to a real deployment: it *executes* a planned schedule by
//! synthesizing fresh sensor windows from an activity stream, running the
//! actual trained classifiers of each design point, and scoring the
//! predictions against ground truth. Slower than Bernoulli sampling but
//! makes no assumptions — it is how the reproduction validates that the
//! accuracies fed to the optimizer are achievable on signal data the
//! classifiers have never seen.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reap_core::Schedule;
use reap_data::{ActivityWindow, UserProfile};
use reap_har::{HarError, TrainedClassifier};

use crate::ActivityStream;

/// Outcome of executing one schedule with real classifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome {
    /// Windows classified per design point id, in schedule order.
    pub per_point: Vec<PointOutcome>,
}

/// Recognition statistics of one design point during the execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointOutcome {
    /// The design point's id.
    pub point_id: u8,
    /// Windows this point classified.
    pub classified: u64,
    /// Windows classified correctly.
    pub correct: u64,
}

impl ExecutionOutcome {
    /// Overall realized accuracy; `None` when nothing was classified.
    #[must_use]
    pub fn accuracy(&self) -> Option<f64> {
        let classified: u64 = self.per_point.iter().map(|p| p.classified).sum();
        if classified == 0 {
            return None;
        }
        let correct: u64 = self.per_point.iter().map(|p| p.correct).sum();
        Some(correct as f64 / classified as f64)
    }

    /// Realized accuracy of one point; `None` if it classified nothing.
    #[must_use]
    pub fn point_accuracy(&self, point_id: u8) -> Option<f64> {
        self.per_point
            .iter()
            .find(|p| p.point_id == point_id)
            .and_then(|p| {
                if p.classified == 0 {
                    None
                } else {
                    Some(p.correct as f64 / p.classified as f64)
                }
            })
    }
}

/// Executes `schedule` with real classifiers against freshly synthesized
/// windows from `stream`, worn by `profile`.
///
/// `classifiers` maps a design point id to its trained classifier; every
/// allocation in the schedule must have one. `subsample` classifies every
/// `subsample`-th window to bound runtime (1 = every window).
///
/// # Errors
///
/// * [`HarError::InvalidConfig`] when a scheduled point has no classifier
///   or `subsample == 0`.
/// * Propagates feature-extraction errors.
pub fn execute_schedule(
    schedule: &Schedule,
    classifiers: &[(u8, &TrainedClassifier)],
    profile: &UserProfile,
    stream: &mut ActivityStream,
    seed: u64,
    subsample: u32,
) -> Result<ExecutionOutcome, HarError> {
    if subsample == 0 {
        return Err(HarError::InvalidConfig("subsample must be >= 1".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA24B_AED4_963E_E407));
    let window_s = reap_data::WINDOW_SECONDS;
    let mut per_point = Vec::with_capacity(schedule.allocations().len());
    for allocation in schedule.allocations() {
        let id = allocation.point.id();
        let classifier = classifiers
            .iter()
            .find(|(cid, _)| *cid == id)
            .map(|(_, c)| *c)
            .ok_or_else(|| {
                HarError::InvalidConfig(format!("no classifier for scheduled point {id}"))
            })?;
        let windows = (allocation.duration.seconds() / window_s).floor() as u64;
        let mut outcome = PointOutcome {
            point_id: id,
            classified: 0,
            correct: 0,
        };
        for w in 0..windows {
            let label = stream.next_window();
            if w % u64::from(subsample) != 0 {
                continue; // the wearer still moves; we just skip scoring
            }
            let window = ActivityWindow::synthesize(profile, label, &mut rng);
            let predicted = classifier.classify(&window)?;
            outcome.classified += 1;
            if predicted == label {
                outcome.correct += 1;
            }
        }
        per_point.push(outcome);
    }
    Ok(ExecutionOutcome { per_point })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_core::{OperatingPoint, ReapProblem};
    use reap_data::Dataset;
    use reap_har::{train_classifier, DpConfig, TrainConfig};
    use reap_units::{Energy, Power};

    fn trained_pair() -> (TrainedClassifier, TrainedClassifier) {
        let dataset = Dataset::generate(4, 420, 21);
        let configs = DpConfig::paper_pareto_5();
        let dp1 = train_classifier(&dataset, &configs[0], &TrainConfig::fast(21)).unwrap();
        let dp5 = train_classifier(&dataset, &configs[4], &TrainConfig::fast(21)).unwrap();
        (dp1, dp5)
    }

    fn schedule(dp1_acc: f64, dp5_acc: f64) -> Schedule {
        let problem = ReapProblem::builder()
            .points(vec![
                OperatingPoint::new(1, "DP1", dp1_acc, Power::from_milliwatts(2.76)).unwrap(),
                OperatingPoint::new(5, "DP5", dp5_acc, Power::from_milliwatts(1.20)).unwrap(),
            ])
            .build()
            .unwrap();
        problem.solve(Energy::from_joules(6.0)).unwrap()
    }

    #[test]
    fn execution_scores_real_predictions() {
        let (dp1, dp5) = trained_pair();
        let s = schedule(dp1.test_accuracy, dp5.test_accuracy);
        let profile = UserProfile::generate(1, 21);
        let mut stream = ActivityStream::new(33);
        let outcome = execute_schedule(
            &s,
            &[(1, &dp1), (5, &dp5)],
            &profile,
            &mut stream,
            9,
            25, // score every 25th window to keep the test fast
        )
        .unwrap();
        let acc = outcome.accuracy().expect("device ran");
        assert!(acc > 0.5, "realized accuracy {acc}");
        // Per-point stats exist for each scheduled point.
        for a in s.allocations() {
            assert!(outcome.point_accuracy(a.point.id()).is_some());
        }
    }

    #[test]
    fn missing_classifier_is_an_error() {
        let (dp1, _) = trained_pair();
        let s = schedule(0.9, 0.7);
        let profile = UserProfile::generate(1, 21);
        let mut stream = ActivityStream::new(1);
        let err = execute_schedule(&s, &[(1, &dp1)], &profile, &mut stream, 0, 50);
        assert!(matches!(err, Err(HarError::InvalidConfig(_))));
    }

    #[test]
    fn zero_subsample_is_rejected() {
        let (dp1, dp5) = trained_pair();
        let s = schedule(0.9, 0.7);
        let profile = UserProfile::generate(1, 21);
        let mut stream = ActivityStream::new(1);
        let err = execute_schedule(&s, &[(1, &dp1), (5, &dp5)], &profile, &mut stream, 0, 0);
        assert!(matches!(err, Err(HarError::InvalidConfig(_))));
    }

    #[test]
    fn execution_is_deterministic() {
        let (dp1, dp5) = trained_pair();
        let s = schedule(dp1.test_accuracy, dp5.test_accuracy);
        let profile = UserProfile::generate(2, 21);
        let run = || {
            let mut stream = ActivityStream::new(5);
            execute_schedule(&s, &[(1, &dp1), (5, &dp5)], &profile, &mut stream, 4, 40).unwrap()
        };
        assert_eq!(run(), run());
    }
}
