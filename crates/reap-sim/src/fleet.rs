//! Fleet-scale simulation: thousands of seeded synthetic users, each with
//! their own harvest source, operating points, and preference.
//!
//! The paper evaluates REAP on a single solar trace and a single user.
//! The [`Fleet`] stress-tests the same policies across a *population*:
//! every user gets a harvest trace from one of the bundled
//! [`SourceKind`]s (outdoor solar, indoor photovoltaic, thermoelectric,
//! kinetic), a LOUO-style perturbation of the base operating points
//! (mirroring the per-wearer accuracy spread that leave-one-user-out
//! cross-validation measures), and their own energy/accuracy preference
//! `alpha` — all derived deterministically from one master seed.
//!
//! Users are sharded over the [`run_matrix_with_threads`] scoped executor
//! and reduced to per-user scalars as each shard completes, so memory
//! stays `O(users)` instead of `O(users × hours)`: no per-user
//! [`SimReport`] survives the run. The resulting [`FleetReport`] carries
//! population percentiles (p5/p50/p95) of accuracy and active time, plus
//! per-source means — and is **bit-identical for every worker-thread
//! count**, because parallelism only changes which core runs a user,
//! never the arithmetic or the aggregation order.

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::{Arc, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reap_core::OperatingPoint;
use reap_harvest::{HarvestTrace, SourceKind, TracePerturbation};

use crate::engine::Policy;
use crate::matrix::run_matrix_with_threads;
use crate::soa::SoaFleet;
use crate::{AllocatorKind, ForecasterKind, Scenario, SimError, SimReport};

/// Default users per shard: large enough to amortize per-shard setup,
/// small enough that one shard's SoA state stays cache-resident
/// (see [`FleetBuilder::shard_users`]).
const DEFAULT_SHARD_USERS: usize = 256;

/// A population of seeded synthetic users ready to simulate.
///
/// Build one with [`Fleet::builder`]; run it with [`Fleet::run`] (or
/// [`Fleet::run_with_threads`] to pin the worker count). Each user is a
/// pure function of `(master seed, user index)`, so any individual
/// scenario can be reconstructed with [`Fleet::user_scenario`] — e.g. to
/// replay the p5 straggler of a million-user run in isolation.
///
/// # Examples
///
/// ```
/// use reap_sim::Fleet;
///
/// # fn main() -> Result<(), reap_sim::SimError> {
/// let fleet = Fleet::builder(reap_device::paper_table2_operating_points())
///     .users(8)
///     .days(2)
///     .seed(42)
///     .build()?;
/// let report = fleet.run()?;
/// assert_eq!(report.users(), 8);
/// // Percentiles are ordered and accuracies are probabilities.
/// let acc = report.accuracy();
/// assert!(0.0 <= acc.p5 && acc.p5 <= acc.p50 && acc.p50 <= acc.p95 && acc.p95 <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fleet {
    pub(crate) users: u32,
    pub(crate) seed: u64,
    pub(crate) days: u32,
    pub(crate) start_day_of_year: u32,
    pub(crate) base_points: Vec<OperatingPoint>,
    pub(crate) sources: Vec<SourceKind>,
    pub(crate) alpha_range: (f64, f64),
    pub(crate) accuracy_spread: f64,
    pub(crate) allocator: AllocatorKind,
    pub(crate) policy: Policy,
    pub(crate) forecaster: ForecasterKind,
    pub(crate) shard_users: NonZeroUsize,
    /// Seeded blackout injection: `Some((seed, fraction))` zeroes a
    /// seeded contiguous window of `round(fraction * 24)` hours on every
    /// day of every base trace (see
    /// [`BlackoutOverlay`](reap_harvest::BlackoutOverlay)).
    pub(crate) blackout: Option<(u64, f64)>,
    /// Capacitor-scale intermittent operation: every user runs on the
    /// configured capacitor store with power-failure semantics instead of
    /// the battery (see [`IntermittentConfig`](crate::IntermittentConfig)).
    pub(crate) intermittent: Option<crate::clock::IntermittentConfig>,
    /// Engine step width in seconds (default 3600). Sub-hour values route
    /// every user through the event-driven variable-dt core.
    pub(crate) dt_seconds: u32,
    /// The fleet flattened into SoA form, built lazily on the first run
    /// and reused by every later one — a `Fleet` is immutable once
    /// built, so the flattening (cohort dedup, base traces, the user
    /// permutation) is a pure function of this struct.
    soa_cache: OnceLock<Arc<SoaFleet>>,
}

/// Everything user-specific that is *not* the shared base trace: the
/// LOUO-perturbed operating points, the preference `alpha`, and the
/// harvest-trace perturbation. A pure function of `(master seed, user
/// index)`; the scalar replay path ([`Fleet::user_scenario`]), the SoA
/// core, and external resident-state builders (the `reap-serve` daemon)
/// all derive users from this one definition via
/// [`Fleet::user_params`].
#[derive(Debug, Clone)]
pub struct UserParams {
    /// The user's LOUO-perturbed operating points.
    pub points: Vec<OperatingPoint>,
    /// The user's energy/accuracy preference.
    pub alpha: f64,
    /// The user's harvest-trace perturbation (gain + phase over the
    /// shared base trace).
    pub perturbation: TracePerturbation,
}

/// Builder for [`Fleet`]; see [`Fleet::builder`].
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    fleet: Fleet,
}

impl Fleet {
    /// Starts a builder from the base operating points every user's
    /// device supports (e.g.
    /// `reap_device::paper_table2_operating_points()`).
    ///
    /// Defaults: 1000 users, seed 0, the paper's September month (30 days
    /// from day-of-year 244), all four [`SourceKind`]s round-robined
    /// across users, per-user `alpha` drawn from `[0.5, 2.0)`, a ±3
    /// percentage-point LOUO-style accuracy spread, the EWMA allocator,
    /// the [`Policy::Reap`] planner, and the EWMA forecaster (relevant
    /// only under [`Policy::Horizon`]).
    #[must_use]
    pub fn builder(base_points: Vec<OperatingPoint>) -> FleetBuilder {
        FleetBuilder {
            fleet: Fleet {
                users: 1000,
                seed: 0,
                days: 30,
                start_day_of_year: 244,
                base_points,
                sources: SourceKind::ALL.to_vec(),
                alpha_range: (0.5, 2.0),
                accuracy_spread: 0.03,
                allocator: AllocatorKind::Ewma,
                policy: Policy::Reap,
                forecaster: ForecasterKind::Ewma,
                shard_users: NonZeroUsize::new(DEFAULT_SHARD_USERS).expect("non-zero constant"),
                blackout: None,
                intermittent: None,
                dt_seconds: 3600,
                soa_cache: OnceLock::new(),
            },
        }
    }

    /// The policy every user runs.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Number of users in the fleet.
    #[must_use]
    pub fn users(&self) -> u32 {
        self.users
    }

    /// Simulated days per user.
    #[must_use]
    pub fn days(&self) -> u32 {
        self.days
    }

    /// The source kinds users are round-robined across.
    #[must_use]
    pub fn sources(&self) -> &[SourceKind] {
        &self.sources
    }

    /// The harvest source powering user `user`'s device.
    #[must_use]
    pub fn user_source(&self, user: u32) -> SourceKind {
        self.sources[user as usize % self.sources.len()]
    }

    /// Reconstructs the exact scenario user `user` runs: their harvest
    /// trace, perturbed operating points, and `alpha` — a pure function
    /// of the master seed and the index, so any member of a huge fleet
    /// can be replayed alone.
    ///
    /// # Errors
    ///
    /// Propagates harvest/optimizer construction failures
    /// ([`SimError::Harvest`] / [`SimError::Core`]).
    ///
    /// # Panics
    ///
    /// Panics when `user >= self.users()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use reap_sim::{Fleet, Policy};
    ///
    /// # fn main() -> Result<(), reap_sim::SimError> {
    /// let fleet = Fleet::builder(reap_device::paper_table2_operating_points())
    ///     .users(4)
    ///     .days(1)
    ///     .build()?;
    /// // Users cycle through the bundled sources…
    /// assert_ne!(fleet.user_source(0), fleet.user_source(1));
    /// // …and any user's month is individually replayable.
    /// let report = fleet.user_scenario(2)?.run(Policy::Reap)?;
    /// assert_eq!(report.days(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn user_scenario(&self, user: u32) -> Result<Scenario, SimError> {
        assert!(
            user < self.users,
            "user {user} >= fleet size {}",
            self.users
        );
        let base = self.base_trace(self.user_source(user))?;
        let params = self.user_params(user)?;
        let trace = params.perturbation.apply(&base)?;
        let mut builder = Scenario::builder(trace)
            .points(params.points)
            .alpha(params.alpha)
            .allocator(self.allocator)
            .forecaster(self.forecaster)
            .dt_seconds(self.dt_seconds);
        if let Some(cfg) = &self.intermittent {
            builder = builder.intermittent(cfg.clone());
        }
        builder.build()
    }

    /// The seed the shared base trace of `kind` derives from: one weather
    /// stream per source kind, shared (copy-on-perturb) by every user on
    /// that source.
    fn base_trace_seed(&self, kind: SourceKind) -> u64 {
        let ordinal = SourceKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("SourceKind::ALL is exhaustive") as u64;
        self.seed ^ (ordinal + 1).wrapping_mul(0xA076_1D64_78BD_642F)
    }

    /// Generates the shared base trace for `kind` — the one month every
    /// user on that source perturbs. `O(hours)` once per kind, not per
    /// user.
    pub(crate) fn base_trace(&self, kind: SourceKind) -> Result<HarvestTrace, SimError> {
        let source = kind.instantiate(self.base_trace_seed(kind));
        // The blackout overlay wraps here — the single trace hook both
        // the scalar replay path and the SoA engine route through — so
        // every engine sees bit-identical blacked-out traces.
        let source: Box<dyn reap_harvest::HarvestSource> = match self.blackout {
            Some((seed, fraction)) => {
                Box::new(reap_harvest::BlackoutOverlay::new(source, seed, fraction)?)
            }
            None => source,
        };
        Ok(source.generate(self.start_day_of_year, self.days)?)
    }

    /// Derives user `user`'s parameters (perturbed points, `alpha`, trace
    /// perturbation) — the single definition [`Fleet::user_scenario`],
    /// the SoA core, and resident serving state all build users from.
    /// Cheap (`O(points)`, no trace generation), so callers standing up
    /// per-user state for a whole population can loop it.
    ///
    /// # Errors
    ///
    /// [`SimError::Core`] when a perturbed operating point fails
    /// validation (cannot happen for spreads accepted by the builder).
    pub fn user_params(&self, user: u32) -> Result<UserParams, SimError> {
        // Perturbation seed: user-distinct but stable under fleet
        // resizing.
        let trace_seed = self
            .seed
            .wrapping_add(u64::from(user).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let perturbation = TracePerturbation::from_seed(trace_seed);

        // LOUO-style perturbation: shift every point's accuracy by a
        // per-user offset pattern, mimicking the spread leave-one-user-out
        // folds show around the pooled accuracy (see `ablation_louo`).
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                .wrapping_add(u64::from(user)),
        );
        let spread = self.accuracy_spread;
        let points = self
            .base_points
            .iter()
            .map(|p| {
                let delta = if spread > 0.0 {
                    rng.gen_range(-spread..spread)
                } else {
                    0.0
                };
                let accuracy = (p.accuracy() + delta).clamp(0.02, 0.995);
                OperatingPoint::new(p.id(), p.label(), accuracy, p.power())
            })
            .collect::<Result<Vec<_>, _>>()?;

        let (lo, hi) = self.alpha_range;
        let alpha = if hi > lo { rng.gen_range(lo..hi) } else { lo };
        Ok(UserParams {
            points,
            alpha,
            perturbation,
        })
    }

    /// Simulates the whole fleet under the configured policy
    /// ([`Policy::Reap`] by default), sharding users over all available
    /// cores.
    ///
    /// The myopic policies ([`Policy::Reap`], [`Policy::Static`]) run on
    /// the data-oriented SoA core ([`crate::soa`]): the whole population
    /// steps through each simulated hour with cohort-shared plan
    /// frontiers and copy-on-perturb traces, orders of magnitude faster
    /// than per-user scalar simulation and agreeing with it to within
    /// 1e-12 on every per-user scalar (pinned by property tests).
    /// [`Policy::Horizon`] keeps the scalar engine — its joint LP has
    /// genuinely per-user state each hour.
    ///
    /// # Errors
    ///
    /// Propagates the first per-user construction or engine failure, in
    /// user order.
    pub fn run(&self) -> Result<FleetReport, SimError> {
        self.run_with_threads(None)
    }

    /// [`Fleet::run`] with an explicit worker-thread cap (`None` = the
    /// machine's available parallelism). The report is **bit-identical
    /// for every thread count** — the property the fleet determinism
    /// tests pin down.
    ///
    /// # Errors
    ///
    /// Same as [`Fleet::run`].
    pub fn run_with_threads(
        &self,
        max_threads: Option<NonZeroUsize>,
    ) -> Result<FleetReport, SimError> {
        let soa = match self.soa_cache.get() {
            Some(soa) => Arc::clone(soa),
            None => {
                let built = Arc::new(SoaFleet::new(self)?);
                Arc::clone(self.soa_cache.get_or_init(|| built))
            }
        };
        let mut acc = FleetAccumulator::new(self);
        if soa.supports_policy() {
            for (user, outcome) in soa.run(max_threads).iter().enumerate() {
                acc.absorb_outcome(user as u32, outcome);
            }
        } else {
            // Scalar fallback (Horizon): shard users over the matrix
            // executor exactly as before the SoA core existed.
            let policies = [self.policy];
            let shard = self.shard_users.get().min(u32::MAX as usize) as u64;
            let mut user = 0u32;
            while user < self.users {
                let shard_end = (u64::from(user) + shard).min(u64::from(self.users)) as u32;
                let scenarios = (user..shard_end)
                    .map(|u| self.user_scenario(u))
                    .collect::<Result<Vec<_>, _>>()?;
                let rows = run_matrix_with_threads(&scenarios, &policies, max_threads)?;
                for (offset, row) in rows.iter().enumerate() {
                    acc.absorb(user + offset as u32, &row[0]);
                }
                // `rows` (and the shard's hour-by-hour reports) drop
                // here: only the per-user scalars inside `acc` survive.
                user = shard_end;
            }
        }
        let mut report = acc.finish();
        report.cohorts = soa.cohorts();
        report.soa_bytes_per_user = if soa.supports_policy() {
            soa.bytes_per_user()
        } else {
            0
        };
        Ok(report)
    }
}

impl FleetBuilder {
    /// Sets the number of users (default 1000).
    #[must_use]
    pub fn users(mut self, users: u32) -> Self {
        self.fleet.users = users;
        self
    }

    /// Sets the master seed every per-user stream derives from
    /// (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.fleet.seed = seed;
        self
    }

    /// Sets the simulated days per user (default 30).
    #[must_use]
    pub fn days(mut self, days: u32) -> Self {
        self.fleet.days = days;
        self
    }

    /// Sets the 1-based calendar day traces start on (default 244, the
    /// paper's September).
    #[must_use]
    pub fn start_day_of_year(mut self, day: u32) -> Self {
        self.fleet.start_day_of_year = day;
        self
    }

    /// Sets the harvest sources users are round-robined across (default:
    /// all of [`SourceKind::ALL`]).
    #[must_use]
    pub fn sources(mut self, sources: Vec<SourceKind>) -> Self {
        self.fleet.sources = sources;
        self
    }

    /// Sets the half-open `[lo, hi)` range per-user `alpha`s are drawn
    /// from (default `[0.5, 2.0)`); `lo == hi` pins every user to `lo`.
    #[must_use]
    pub fn alpha_range(mut self, lo: f64, hi: f64) -> Self {
        self.fleet.alpha_range = (lo, hi);
        self
    }

    /// Sets the LOUO-style per-user accuracy perturbation half-width, in
    /// accuracy units (default 0.03, i.e. ±3 percentage points).
    #[must_use]
    pub fn accuracy_spread(mut self, spread: f64) -> Self {
        self.fleet.accuracy_spread = spread;
        self
    }

    /// Sets the budget allocator every user runs (default: EWMA).
    #[must_use]
    pub fn allocator(mut self, allocator: AllocatorKind) -> Self {
        self.fleet.allocator = allocator;
        self
    }

    /// Sets the planning policy every user runs (default:
    /// [`Policy::Reap`]).
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.fleet.policy = policy;
        self
    }

    /// Sets the harvest forecaster users' [`Policy::Horizon`] runs use
    /// (default: the causal EWMA forecaster). Ignored by myopic policies.
    #[must_use]
    pub fn forecaster(mut self, forecaster: ForecasterKind) -> Self {
        self.fleet.forecaster = forecaster;
        self
    }

    /// Sets how many users each shard batches (default 256). Shards are
    /// the unit of parallelism *and* of cache residency for the SoA core
    /// — one shard's state walks all simulated hours before the next
    /// shard starts. Per-user results do not depend on shard boundaries,
    /// so any size (odd, one, larger than the fleet) produces a
    /// bit-identical [`FleetReport`]; tune it for throughput only.
    #[must_use]
    pub fn shard_users(mut self, shard_users: NonZeroUsize) -> Self {
        self.fleet.shard_users = shard_users;
        self
    }

    /// Injects seeded harvest blackouts: a contiguous window of
    /// `round(fraction * 24)` hours on every day of every base trace
    /// harvests exactly zero, with per-day window starts drawn from
    /// `seed` (default: no blackouts). Models fleet-wide outage stress —
    /// wearables in drawers, shadowed panels — reproducibly; see
    /// [`BlackoutOverlay`](reap_harvest::BlackoutOverlay).
    #[must_use]
    pub fn blackout(mut self, seed: u64, fraction: f64) -> Self {
        self.fleet.blackout = Some((seed, fraction));
        self
    }

    /// Puts every user on a capacitor-scale intermittent energy store:
    /// harvest charges the configured capacitor, brownouts kill the node
    /// and lose volatile state, and turn-on pays the restore tax (default:
    /// battery operation). Required by [`Policy::Intermittent`]; the
    /// event-driven core runs every user when set.
    #[must_use]
    pub fn intermittent(mut self, config: crate::clock::IntermittentConfig) -> Self {
        self.fleet.intermittent = Some(config);
        self
    }

    /// Sets the engine step width in seconds (default 3600). Must divide
    /// the hour evenly; sub-hour widths route every user through the
    /// event-driven variable-dt core.
    #[must_use]
    pub fn dt_seconds(mut self, dt_seconds: u32) -> Self {
        self.fleet.dt_seconds = dt_seconds;
        self
    }

    /// Validates and builds the fleet.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] when the fleet is empty (no users,
    /// no days, no sources, no operating points) or a numeric parameter
    /// is out of range.
    pub fn build(self) -> Result<Fleet, SimError> {
        let f = &self.fleet;
        if f.users == 0 {
            return Err(SimError::InvalidParameter("zero users".into()));
        }
        if f.days == 0 {
            return Err(SimError::InvalidParameter("zero days".into()));
        }
        if !(1..=365).contains(&f.start_day_of_year) {
            return Err(SimError::InvalidParameter(format!(
                "start day of year {} outside 1..=365",
                f.start_day_of_year
            )));
        }
        if f.sources.is_empty() {
            return Err(SimError::InvalidParameter("no harvest sources".into()));
        }
        if f.base_points.is_empty() {
            return Err(SimError::InvalidParameter("no operating points".into()));
        }
        let (lo, hi) = f.alpha_range;
        if !lo.is_finite() || !hi.is_finite() || lo < 0.0 || hi < lo {
            return Err(SimError::InvalidParameter(format!(
                "alpha range [{lo}, {hi}) must satisfy 0 <= lo <= hi"
            )));
        }
        if !f.accuracy_spread.is_finite() || !(0.0..0.5).contains(&f.accuracy_spread) {
            return Err(SimError::InvalidParameter(format!(
                "accuracy spread {} outside [0, 0.5)",
                f.accuracy_spread
            )));
        }
        match f.policy {
            Policy::Horizon { lookahead: 0 } => {
                return Err(SimError::InvalidParameter(
                    "horizon policy needs a lookahead of at least one hour".into(),
                ));
            }
            Policy::Static(id) if !f.base_points.iter().any(|p| p.id() == id) => {
                return Err(SimError::InvalidParameter(format!(
                    "static policy references unknown operating point {id}"
                )));
            }
            Policy::Intermittent if f.intermittent.is_none() => {
                return Err(SimError::InvalidParameter(
                    "the intermittent policy needs an intermittent energy store; \
                     configure one with FleetBuilder::intermittent"
                        .into(),
                ));
            }
            _ => {}
        }
        if f.dt_seconds == 0 || 3600 % f.dt_seconds != 0 {
            return Err(SimError::InvalidParameter(format!(
                "dt of {} s does not divide the hour evenly",
                f.dt_seconds
            )));
        }
        if let Some((_, fraction)) = f.blackout {
            if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
                return Err(SimError::InvalidParameter(format!(
                    "blackout fraction {fraction} outside [0, 1]"
                )));
            }
        }
        if let ForecasterKind::Oracle { rel_error, .. } = f.forecaster {
            if !rel_error.is_finite() || rel_error < 0.0 {
                return Err(SimError::InvalidParameter(format!(
                    "oracle forecast error {rel_error} must be finite and non-negative"
                )));
            }
        }
        Ok(self.fleet)
    }
}

/// p5/p50/p95 of one per-user metric across the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 5th percentile — the stragglers.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile — the best-served users.
    pub p95: f64,
}

impl Percentiles {
    /// Linear-interpolation percentiles of `values` (need not be sorted).
    ///
    /// # Panics
    ///
    /// Panics when `values` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use reap_sim::Percentiles;
    ///
    /// let p = Percentiles::of(vec![4.0, 1.0, 2.0, 3.0, 0.0]);
    /// assert_eq!(p.p50, 2.0);
    /// assert!((p.p95 - 3.8).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn of(mut values: Vec<f64>) -> Percentiles {
        assert!(!values.is_empty(), "percentiles of an empty population");
        values.sort_by(f64::total_cmp);
        let at = |q: f64| {
            let rank = q * (values.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            values[lo] + (values[hi] - values[lo]) * (rank - lo as f64)
        };
        Percentiles {
            p5: at(0.05),
            p50: at(0.50),
            p95: at(0.95),
        }
    }
}

impl fmt::Display for Percentiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p5 {:.3} / p50 {:.3} / p95 {:.3}",
            self.p5, self.p50, self.p95
        )
    }
}

/// Aggregate outcome for the users of one [`SourceKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSlice {
    /// The harvest source these users carry.
    pub kind: SourceKind,
    /// How many fleet users run on this source.
    pub users: u32,
    /// Mean per-user realized accuracy.
    pub mean_accuracy: f64,
    /// Mean per-user active-time fraction (realized active time over the
    /// whole trace duration).
    pub mean_active_fraction: f64,
    /// Mean per-user total harvested energy over the trace, in joules.
    pub mean_harvested_j: f64,
}

/// Population-level outcome of a [`Fleet::run`].
///
/// Holds only aggregates — percentiles over per-user scalars and
/// per-source means — never the per-user [`SimReport`]s, so a
/// million-user report is as small as a ten-user one.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    users: u32,
    days: u32,
    accuracy: Percentiles,
    active_fraction: Percentiles,
    mean_accuracy: f64,
    mean_active_fraction: f64,
    brownout_hours: u64,
    per_source: Vec<SourceSlice>,
    cohorts: u32,
    soa_bytes_per_user: u32,
}

impl FleetReport {
    /// Number of users simulated.
    #[must_use]
    pub fn users(&self) -> u32 {
        self.users
    }

    /// Simulated days per user.
    #[must_use]
    pub fn days(&self) -> u32 {
        self.days
    }

    /// Percentiles of per-user mean realized accuracy.
    #[must_use]
    pub fn accuracy(&self) -> Percentiles {
        self.accuracy
    }

    /// Percentiles of per-user active-time fraction (realized active time
    /// over the whole trace duration, in `[0, 1]`).
    #[must_use]
    pub fn active_fraction(&self) -> Percentiles {
        self.active_fraction
    }

    /// Fleet-wide mean of the per-user mean accuracies.
    #[must_use]
    pub fn mean_accuracy(&self) -> f64 {
        self.mean_accuracy
    }

    /// Fleet-wide mean of the per-user active-time fractions.
    #[must_use]
    pub fn mean_active_fraction(&self) -> f64 {
        self.mean_active_fraction
    }

    /// Total brownout hours across every user.
    #[must_use]
    pub fn brownout_hours(&self) -> u64 {
        self.brownout_hours
    }

    /// Per-source aggregates, in the fleet's source order.
    #[must_use]
    pub fn per_source(&self) -> &[SourceSlice] {
        &self.per_source
    }

    /// Number of distinct `(operating points, alpha)` cohorts in the
    /// population — users in one cohort share a single cached plan
    /// frontier in the SoA core.
    #[must_use]
    pub fn cohorts(&self) -> u32 {
        self.cohorts
    }

    /// Resident SoA state per user in bytes (per-user arrays plus the
    /// amortized shared cohort tables and base traces), rounded up; `0`
    /// when the run used the scalar fallback engine
    /// ([`Policy::Horizon`]).
    #[must_use]
    pub fn soa_bytes_per_user(&self) -> u32 {
        self.soa_bytes_per_user
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fleet of {} users x {} days: accuracy {}, active fraction {}, {} brownout hours",
            self.users, self.days, self.accuracy, self.active_fraction, self.brownout_hours,
        )
    }
}

/// Streaming reducer from per-user [`SimReport`]s to the [`FleetReport`]
/// aggregates. Users are absorbed in index order whatever the thread
/// count, so the output is deterministic.
struct FleetAccumulator {
    days: u32,
    sources: Vec<SourceKind>,
    accuracies: Vec<f64>,
    active_fractions: Vec<f64>,
    brownout_hours: u64,
    // Per source-slot: (users, accuracy sum, active-fraction sum, harvested J sum).
    source_sums: Vec<(u32, f64, f64, f64)>,
}

impl FleetAccumulator {
    fn new(fleet: &Fleet) -> FleetAccumulator {
        FleetAccumulator {
            days: fleet.days,
            sources: fleet.sources.clone(),
            accuracies: Vec::with_capacity(fleet.users as usize),
            active_fractions: Vec::with_capacity(fleet.users as usize),
            brownout_hours: 0,
            source_sums: vec![(0, 0.0, 0.0, 0.0); fleet.sources.len()],
        }
    }

    /// Reduces a scalar-engine [`SimReport`] to per-user scalars and
    /// absorbs them — the same reduction the SoA core performs inline.
    fn absorb(&mut self, user: u32, report: &SimReport) {
        let trace_hours = f64::from(self.days) * 24.0;
        self.absorb_outcome(
            user,
            &crate::soa::UserOutcome {
                accuracy: report.mean_accuracy(),
                active_fraction: report.total_active_time().hours() / trace_hours,
                brownout_hours: report.brownout_hours() as u32,
                harvested_j: report.total_harvested().joules(),
            },
        );
    }

    fn absorb_outcome(&mut self, user: u32, outcome: &crate::soa::UserOutcome) {
        self.accuracies.push(outcome.accuracy);
        self.active_fractions.push(outcome.active_fraction);
        self.brownout_hours += u64::from(outcome.brownout_hours);
        let slot = &mut self.source_sums[user as usize % self.sources.len()];
        slot.0 += 1;
        slot.1 += outcome.accuracy;
        slot.2 += outcome.active_fraction;
        slot.3 += outcome.harvested_j;
    }

    fn finish(self) -> FleetReport {
        let users = self.accuracies.len() as u32;
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let per_source = self
            .sources
            .iter()
            .zip(&self.source_sums)
            .map(|(&kind, &(n, acc, active, harvested))| {
                let d = f64::from(n.max(1));
                SourceSlice {
                    kind,
                    users: n,
                    mean_accuracy: acc / d,
                    mean_active_fraction: active / d,
                    mean_harvested_j: harvested / d,
                }
            })
            .collect();
        FleetReport {
            users,
            days: self.days,
            mean_accuracy: mean(&self.accuracies),
            mean_active_fraction: mean(&self.active_fractions),
            accuracy: Percentiles::of(self.accuracies),
            active_fraction: Percentiles::of(self.active_fractions),
            brownout_hours: self.brownout_hours,
            per_source,
            // Filled in by `Fleet::run_with_threads` from the SoA build.
            cohorts: 0,
            soa_bytes_per_user: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reap_units::Power;

    fn base_points() -> Vec<OperatingPoint> {
        vec![
            OperatingPoint::new(1, "DP1", 0.94, Power::from_milliwatts(2.76)).unwrap(),
            OperatingPoint::new(5, "DP5", 0.76, Power::from_milliwatts(1.20)).unwrap(),
        ]
    }

    fn small_fleet(users: u32, days: u32) -> Fleet {
        Fleet::builder(base_points())
            .users(users)
            .days(days)
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_degenerate_fleets() {
        assert!(Fleet::builder(base_points()).users(0).build().is_err());
        assert!(Fleet::builder(base_points()).days(0).build().is_err());
        assert!(Fleet::builder(base_points())
            .start_day_of_year(0)
            .build()
            .is_err());
        assert!(Fleet::builder(base_points())
            .start_day_of_year(366)
            .build()
            .is_err());
        assert!(Fleet::builder(base_points())
            .sources(Vec::new())
            .build()
            .is_err());
        assert!(Fleet::builder(Vec::new()).build().is_err());
        assert!(Fleet::builder(base_points())
            .alpha_range(2.0, 1.0)
            .build()
            .is_err());
        assert!(Fleet::builder(base_points())
            .alpha_range(f64::NAN, 1.0)
            .build()
            .is_err());
        assert!(Fleet::builder(base_points())
            .accuracy_spread(0.7)
            .build()
            .is_err());
    }

    #[test]
    fn users_round_robin_across_all_sources() {
        let fleet = small_fleet(9, 1);
        for (user, kind) in SourceKind::ALL.iter().enumerate() {
            assert_eq!(fleet.user_source(user as u32), *kind);
            assert_eq!(fleet.user_source(user as u32 + 4), *kind);
        }
    }

    #[test]
    fn user_scenarios_are_deterministic_and_personalized() {
        let fleet = small_fleet(8, 1);
        let a = fleet.user_scenario(5).unwrap();
        let b = fleet.user_scenario(5).unwrap();
        assert_eq!(a.problem().alpha(), b.problem().alpha());
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.problem().points(), b.problem().points());
        // Different users get different alphas and perturbed accuracies.
        let c = fleet.user_scenario(1).unwrap();
        assert_ne!(a.problem().alpha(), c.problem().alpha());
        assert_ne!(
            a.problem().points()[0].accuracy(),
            c.problem().points()[0].accuracy()
        );
        // The perturbation stays within the configured spread.
        for user in 0..8 {
            let s = fleet.user_scenario(user).unwrap();
            for (p, base) in s.problem().points().iter().zip(base_points()) {
                assert!((p.accuracy() - base.accuracy()).abs() <= 0.03 + 1e-12);
                assert_eq!(p.power(), base.power());
            }
        }
    }

    #[test]
    #[should_panic(expected = ">= fleet size")]
    fn user_index_out_of_range_panics() {
        let _ = small_fleet(2, 1).user_scenario(2);
    }

    #[test]
    fn report_aggregates_are_consistent() {
        let fleet = small_fleet(10, 2);
        let report = fleet.run().unwrap();
        assert_eq!(report.users(), 10);
        assert_eq!(report.days(), 2);
        let acc = report.accuracy();
        assert!(acc.p5 <= acc.p50 && acc.p50 <= acc.p95);
        assert!(acc.p5 >= 0.0 && acc.p95 <= 1.0);
        let active = report.active_fraction();
        assert!(active.p5 <= active.p50 && active.p50 <= active.p95);
        assert!(active.p5 >= 0.0 && active.p95 <= 1.0);
        assert!(acc.p5 <= report.mean_accuracy() && report.mean_accuracy() <= acc.p95);
        let per_source_users: u32 = report.per_source().iter().map(|s| s.users).sum();
        assert_eq!(per_source_users, 10);
        for slice in report.per_source() {
            assert!(slice.users > 0, "{} unused", slice.kind);
            assert!(
                slice.mean_harvested_j > 0.0,
                "{} harvested nothing",
                slice.kind
            );
        }
    }

    #[test]
    fn builder_validates_policy_and_forecaster() {
        assert!(Fleet::builder(base_points())
            .policy(Policy::Horizon { lookahead: 0 })
            .build()
            .is_err());
        assert!(Fleet::builder(base_points())
            .policy(Policy::Static(9))
            .build()
            .is_err());
        assert!(Fleet::builder(base_points())
            .forecaster(ForecasterKind::Oracle {
                rel_error: f64::NAN,
                seed: 0,
            })
            .build()
            .is_err());
        let fleet = Fleet::builder(base_points())
            .policy(Policy::Horizon { lookahead: 6 })
            .build()
            .unwrap();
        assert_eq!(fleet.policy(), Policy::Horizon { lookahead: 6 });
    }

    #[test]
    fn fleet_runs_the_horizon_policy_at_population_scale() {
        // A small fleet on the receding-horizon policy with the causal
        // EWMA forecaster: every user plans lookahead windows, and the
        // aggregate stays deterministic across thread counts.
        let fleet = Fleet::builder(base_points())
            .users(6)
            .days(2)
            .seed(3)
            .policy(Policy::Horizon { lookahead: 12 })
            .build()
            .unwrap();
        let report = fleet.run().unwrap();
        assert_eq!(report.users(), 6);
        assert!(report.mean_active_fraction() > 0.0);
        let single = fleet.run_with_threads(Some(NonZeroUsize::MIN)).unwrap();
        assert_eq!(single, report, "horizon fleet diverged across threads");
    }

    #[test]
    fn fleet_report_is_bit_identical_across_thread_counts() {
        // Mirrors the `run_matrix` guarantee one level up: sharding users
        // over 1, 2, or many workers must not change a single bit of the
        // aggregate percentiles.
        let fleet = small_fleet(13, 2);
        let unbounded = fleet.run().unwrap();
        for threads in [1usize, 2, 5] {
            let capped = fleet
                .run_with_threads(Some(NonZeroUsize::new(threads).unwrap()))
                .unwrap();
            assert_eq!(capped, unbounded, "{threads}-thread fleet run diverged");
        }
    }

    #[test]
    fn odd_shard_sizes_produce_bit_identical_reports() {
        // Shards are a throughput knob only: slicing 21 users into
        // 1-user, odd, default, or oversized shards must not move a
        // single bit of the report.
        let with_shard = |shard: usize| {
            Fleet::builder(base_points())
                .users(21)
                .days(2)
                .seed(7)
                .shard_users(NonZeroUsize::new(shard).unwrap())
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let baseline = small_fleet(21, 2).run().unwrap();
        for shard in [1usize, 3, 7, 13, 1000] {
            assert_eq!(with_shard(shard), baseline, "shard size {shard} diverged");
        }
        // The scalar-fallback policy honors the same invariant.
        let horizon = |shard: usize| {
            Fleet::builder(base_points())
                .users(5)
                .days(1)
                .seed(7)
                .policy(Policy::Horizon { lookahead: 4 })
                .shard_users(NonZeroUsize::new(shard).unwrap())
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let h_baseline = horizon(DEFAULT_SHARD_USERS);
        for shard in [1usize, 2, 3] {
            assert_eq!(horizon(shard), h_baseline, "horizon shard {shard} diverged");
        }
    }

    #[test]
    fn percentiles_interpolate() {
        let p = Percentiles::of(vec![4.0, 1.0, 2.0, 3.0, 0.0]);
        assert!((p.p50 - 2.0).abs() < 1e-12);
        assert!((p.p5 - 0.2).abs() < 1e-12);
        assert!((p.p95 - 3.8).abs() < 1e-12);
        let single = Percentiles::of(vec![1.5]);
        assert_eq!((single.p5, single.p50, single.p95), (1.5, 1.5, 1.5));
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn percentiles_of_empty_panic() {
        let _ = Percentiles::of(Vec::new());
    }
}
