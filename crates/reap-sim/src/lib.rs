//! Full-system simulation of an energy-harvesting HAR node.
//!
//! Ties the other crates together into the evaluation loop of the paper's
//! Sec. 5.4: every hour, energy arrives from the harvesting substrate, an
//! allocator turns it into a budget, the policy under test (REAP or a
//! static design point) plans the hour, and the engine executes the plan
//! against the physical energy supply (incoming harvest first, then the
//! battery) — browning out early when supply falls short of the plan.
//!
//! A [`Scenario`] accepts a trace from any
//! [`HarvestSource`](reap_harvest::HarvestSource) — outdoor solar (the
//! paper's setting), indoor photovoltaic, body-heat thermoelectric, or
//! kinetic — and the [`Fleet`] layer scales the same loop to thousands of
//! seeded synthetic users sharded over all cores, reduced on the fly to
//! population percentiles ([`FleetReport`]).
//!
//! # Examples
//!
//! ```
//! use reap_harvest::HarvestTrace;
//! use reap_sim::{AllocatorKind, Policy, Scenario};
//!
//! # fn main() -> Result<(), reap_sim::SimError> {
//! let scenario = Scenario::builder(HarvestTrace::september_like(42))
//!     .points(reap_device::paper_table2_operating_points())
//!     .alpha(1.0)
//!     .allocator(AllocatorKind::Ewma)
//!     .build()?;
//!
//! let reap = scenario.run(Policy::Reap)?;
//! let dp1 = scenario.run(Policy::Static(1))?;
//! // Over a month REAP beats the always-highest-accuracy design point.
//! assert!(reap.total_objective(1.0) > dp1.total_objective(1.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity_stream;
pub mod clock;
mod engine;
mod error;
mod fidelity;
mod fleet;
mod matrix;
mod recognition;
mod report;
mod scenario;
pub mod soa;

pub use activity_stream::ActivityStream;
pub use clock::{ClockStats, EventRecord, IntermittentConfig, VdtRun};
pub use engine::Policy;
pub use error::SimError;
pub use fidelity::{execute_schedule, ExecutionOutcome, PointOutcome};
pub use fleet::{Fleet, FleetBuilder, FleetReport, Percentiles, SourceSlice, UserParams};
pub use matrix::{run_matrix, run_matrix_with_threads};
pub use recognition::{sample_hour, sample_report, HourRecognitions};
pub use report::{HourRecord, SimReport};
pub use scenario::{AllocatorKind, BudgetMode, ForecasterKind, Scenario, ScenarioBuilder};
pub use soa::{SoaFleet, UserOutcome};
