//! Ground-truth activity streams for classifier-in-the-loop simulation.
//!
//! A wearer does not change activity every 1.6 s window; activities dwell
//! for minutes and are separated by one-window transitions. This module
//! generates realistic label sequences used by the full-fidelity
//! simulation mode and the end-to-end examples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reap_data::Activity;

/// Mean dwell time (in 1.6 s windows) per activity.
fn mean_dwell_windows(activity: Activity) -> f64 {
    match activity {
        Activity::Sit => 300.0,      // 8 min
        Activity::Stand => 90.0,     // 2.4 min
        Activity::Walk => 150.0,     // 4 min
        Activity::Jump => 30.0,      // 48 s
        Activity::Drive => 500.0,    // 13 min
        Activity::LieDown => 600.0,  // 16 min
        Activity::Transition => 1.0, // one window
    }
}

/// Which activities can follow a completed dwell (transitions inserted
/// automatically between them).
fn successors(activity: Activity) -> &'static [Activity] {
    match activity {
        Activity::Sit => &[Activity::Stand, Activity::Drive, Activity::LieDown],
        Activity::Stand => &[Activity::Walk, Activity::Sit, Activity::Jump],
        Activity::Walk => &[Activity::Stand, Activity::Jump],
        Activity::Jump => &[Activity::Stand, Activity::Walk],
        Activity::Drive => &[Activity::Sit, Activity::Stand],
        Activity::LieDown => &[Activity::Sit, Activity::Stand],
        Activity::Transition => unreachable!("handled inline"),
    }
}

/// A deterministic semi-Markov stream of window-level activity labels.
///
/// # Examples
///
/// ```
/// use reap_sim::ActivityStream;
///
/// let mut stream = ActivityStream::new(42);
/// let labels = stream.take_windows(2250); // one hour of windows
/// assert_eq!(labels.len(), 2250);
/// ```
#[derive(Debug, Clone)]
pub struct ActivityStream {
    rng: StdRng,
    current: Activity,
    remaining_dwell: u32,
    pending_after_transition: Option<Activity>,
}

impl ActivityStream {
    /// Creates a stream starting from sitting.
    #[must_use]
    pub fn new(seed: u64) -> ActivityStream {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xB5AD_4ECE_DA1C_E2A9));
        let dwell = sample_dwell(&mut rng, Activity::Sit);
        ActivityStream {
            rng,
            current: Activity::Sit,
            remaining_dwell: dwell,
            pending_after_transition: None,
        }
    }

    /// The label of the next 1.6 s window.
    pub fn next_window(&mut self) -> Activity {
        if let Some(next) = self.pending_after_transition.take() {
            // The single transition window has elapsed; enter the new
            // activity.
            self.current = next;
            self.remaining_dwell = sample_dwell(&mut self.rng, next);
        }
        if self.remaining_dwell == 0 {
            // Dwell over: emit one transition window, then switch.
            let choices = successors(self.current);
            let next = choices[self.rng.gen_range(0..choices.len())];
            self.pending_after_transition = Some(next);
            return Activity::Transition;
        }
        self.remaining_dwell -= 1;
        self.current
    }

    /// Convenience: the next `n` window labels.
    #[must_use]
    pub fn take_windows(&mut self, n: usize) -> Vec<Activity> {
        (0..n).map(|_| self.next_window()).collect()
    }
}

/// Geometric-ish dwell sampling around the activity's mean.
fn sample_dwell(rng: &mut StdRng, activity: Activity) -> u32 {
    let mean = mean_dwell_windows(activity);
    // Uniform in [0.5, 1.5] * mean keeps dwells bounded and positive.
    let factor: f64 = rng.gen_range(0.5..1.5);
    (mean * factor).round().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = ActivityStream::new(9);
        let mut b = ActivityStream::new(9);
        assert_eq!(a.take_windows(5000), b.take_windows(5000));
    }

    #[test]
    fn all_activities_appear_over_a_day() {
        let mut s = ActivityStream::new(1);
        let labels = s.take_windows(54_000); // 24 h of windows
        let mut seen = [false; Activity::COUNT];
        for l in &labels {
            seen[l.index()] = true;
        }
        assert!(seen.iter().all(|&b| b), "missing activities: {seen:?}");
    }

    #[test]
    fn transitions_are_single_windows_between_different_activities() {
        let mut s = ActivityStream::new(2);
        let labels = s.take_windows(20_000);
        for (i, w) in labels.windows(3).enumerate() {
            if w[1] == Activity::Transition {
                assert_ne!(w[0], Activity::Transition, "double transition at {i}");
                assert_ne!(w[2], Activity::Transition, "double transition at {i}");
                assert_ne!(w[0], w[2], "transition to the same activity at {i}");
            }
        }
    }

    #[test]
    fn dwell_times_are_plausible() {
        let mut s = ActivityStream::new(3);
        let labels = s.take_windows(100_000);
        // Count mean run length of sit segments.
        let mut runs = Vec::new();
        let mut run = 0u32;
        for &l in &labels {
            if l == Activity::Sit {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        let mean_run = runs.iter().sum::<u32>() as f64 / runs.len().max(1) as f64;
        assert!(
            (150.0..450.0).contains(&mean_run),
            "mean sit dwell {mean_run} windows"
        );
    }

    #[test]
    fn successor_graph_is_closed_over_non_transition_activities() {
        for a in Activity::ALL {
            if a == Activity::Transition {
                continue;
            }
            for &next in successors(a) {
                assert_ne!(next, Activity::Transition);
                assert_ne!(next, a, "self-loop at {a}");
            }
        }
    }
}
