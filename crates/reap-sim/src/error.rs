//! Error type for the simulator.

use std::error::Error;
use std::fmt;

use reap_core::ReapError;
use reap_harvest::HarvestError;

/// Errors produced while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A scenario parameter was invalid.
    InvalidParameter(String),
    /// The optimizer failed.
    Core(ReapError),
    /// The harvesting substrate rejected its inputs.
    Harvest(HarvestError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter(msg) => write!(f, "invalid scenario parameter: {msg}"),
            SimError::Core(e) => write!(f, "optimizer failed: {e}"),
            SimError::Harvest(e) => write!(f, "harvesting substrate failed: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            SimError::Harvest(e) => Some(e),
            SimError::InvalidParameter(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<ReapError> for SimError {
    fn from(e: ReapError) -> Self {
        SimError::Core(e)
    }
}

#[doc(hidden)]
impl From<HarvestError> for SimError {
    fn from(e: HarvestError) -> Self {
        SimError::Harvest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::from(ReapError::NoPoints);
        assert!(e.to_string().contains("optimizer"));
        assert!(Error::source(&e).is_some());
        let h = SimError::from(HarvestError::Parse("x".into()));
        assert!(Error::source(&h).is_some());
        assert!(SimError::InvalidParameter("p".into())
            .to_string()
            .contains('p'));
    }
}
