//! Fleet robustness under harvest blackouts: with 30% of every day's
//! hours zeroed by a seeded [`BlackoutOverlay`], every policy must
//! degrade gracefully — no panics, the hourly energy-conservation
//! identity still holds, and the monitoring floor stays honored in any
//! hour whose own harvest can cover it.

use reap_harvest::{Battery, BlackoutOverlay, HarvestSource, SourceKind};
use reap_sim::{Fleet, FleetReport, Policy, Scenario, SimReport};
use reap_units::Energy;

/// 30% of 24 hours, rounded: the blackout window tested throughout.
const FRACTION: f64 = 0.30;
const WINDOW_HOURS: usize = 7;

fn policies() -> [Policy; 3] {
    [
        Policy::Reap,
        Policy::Static(3),
        Policy::Horizon { lookahead: 12 },
    ]
}

fn fleet(policy: Policy, blackout: Option<(u64, f64)>) -> Fleet {
    let mut builder = Fleet::builder(reap_device::paper_table2_operating_points())
        .users(48)
        .days(5)
        .seed(7)
        .policy(policy);
    if let Some((seed, fraction)) = blackout {
        builder = builder.blackout(seed, fraction);
    }
    builder.build().expect("valid fleet")
}

fn sane(report: &FleetReport, users: u32) {
    assert_eq!(report.users(), users);
    let acc = report.accuracy();
    assert!(
        0.0 <= acc.p5 && acc.p5 <= acc.p50 && acc.p50 <= acc.p95 && acc.p95 <= 1.0,
        "accuracy percentiles disordered: {acc:?}"
    );
    let active = report.active_fraction();
    assert!((0.0..=1.0).contains(&active.p50), "active p50 {active:?}");
    assert!(report.mean_accuracy().is_finite());
    assert!(report.mean_active_fraction().is_finite());
}

#[test]
fn every_policy_survives_30pct_blackout_with_a_sane_report() {
    for policy in policies() {
        let dark = fleet(policy, Some((21, FRACTION)))
            .run()
            .unwrap_or_else(|e| panic!("{policy:?} under blackout: {e}"));
        sane(&dark, 48);
        let clear = fleet(policy, None).run().expect("baseline runs");
        sane(&clear, 48);
        // The fleet genuinely lost input: brownouts do not decrease when
        // 30% of every day goes dark.
        assert!(
            dark.brownout_hours() >= clear.brownout_hours(),
            "{policy:?}: blackout produced fewer brownout hours \
             ({} vs {})",
            dark.brownout_hours(),
            clear.brownout_hours()
        );
    }
}

#[test]
fn blackout_zeroes_exactly_the_window_in_every_user_trace() {
    // Body heat never goes fully dark on its own, so any zero hour in a
    // blacked-out body-heat trace is the overlay's doing — and the
    // per-user trace perturbation permutes hours within a day, so the
    // per-day zero count survives into every user's trace. Windows sit
    // on the continuous timeline (a late window spills into the next
    // day instead of wrapping), so the expected per-day count comes from
    // the overlay's own membership predicate — a pure function of
    // (seed, fraction), independent of the inner source.
    let oracle = BlackoutOverlay::new(SourceKind::BodyHeat.instantiate(0), 21, FRACTION)
        .expect("valid overlay");
    assert_eq!(oracle.window_hours() as usize, WINDOW_HOURS);
    let per_day: Vec<usize> = (0..4)
        .map(|d| (0..24).filter(|&h| oracle.is_blacked_out(d, h)).count())
        .collect();
    // Each day starts one 7-hour window; spill-in/spill-out moves hours
    // across midnight but the 4-day total can only lose hours to the
    // trace end or to window overlap, never gain.
    let total: usize = per_day.iter().sum();
    assert!(
        (2 * WINDOW_HOURS..=4 * WINDOW_HOURS).contains(&total),
        "4-day blackout total {total} outside the plausible union range"
    );
    let base = Fleet::builder(reap_device::paper_table2_operating_points())
        .users(6)
        .days(4)
        .seed(3)
        .sources(vec![SourceKind::BodyHeat])
        .build()
        .expect("valid fleet");
    let dark = Fleet::builder(reap_device::paper_table2_operating_points())
        .users(6)
        .days(4)
        .seed(3)
        .sources(vec![SourceKind::BodyHeat])
        .blackout(21, FRACTION)
        .build()
        .expect("valid fleet");
    for user in 0..6 {
        let clear_trace = base.user_scenario(user).expect("scenario").trace().clone();
        let dark_trace = dark.user_scenario(user).expect("scenario").trace().clone();
        assert!(dark_trace.total() < clear_trace.total(), "user {user}");
        for day in 0..4 {
            let zeros = (0..24)
                .filter(|&h| dark_trace.energy(day, h).joules() == 0.0)
                .count();
            assert_eq!(
                zeros, per_day[day as usize],
                "user {user} day {day}: expected {} blacked-out hours",
                per_day[day as usize]
            );
            assert!(
                (0..24).all(|h| clear_trace.energy(day, h).joules() > 0.0),
                "user {user} day {day}: baseline body heat should never be zero"
            );
        }
    }
}

#[test]
fn monitoring_floor_stays_honored_when_the_hours_own_harvest_covers_it() {
    for policy in policies() {
        let dark = fleet(policy, Some((21, FRACTION)));
        for user in [0u32, 17, 33] {
            let scenario = dark.user_scenario(user).expect("scenario");
            let floor = scenario.problem().min_budget().joules();
            let report = scenario.run(policy).expect("runs under blackout");
            for h in report.hours() {
                if h.harvested.joules() >= floor {
                    assert!(
                        h.budget.joules() >= floor - 1e-9,
                        "{policy:?} user {user} day {} hour {}: budget {} denies the \
                         floor {floor} despite {} J harvested",
                        h.day,
                        h.hour,
                        h.budget.joules(),
                        h.harvested.joules()
                    );
                }
            }
        }
    }
}

/// Replays the battery from the public hour records and checks the
/// conservation identity (same accounting as `sim_properties.rs`).
fn assert_energy_conserved(report: &SimReport, initial: Energy, capacity: Energy, eff: f64) {
    let mut level = initial.joules();
    let cap = capacity.joules();
    for h in report.hours() {
        let consumed = h.planned.energy().joules() * h.realized_fraction;
        let harvested = h.harvested.joules();
        let (charged, discharged, spill);
        if harvested >= consumed {
            let storable = (harvested - consumed) * eff;
            charged = storable.min(cap - level);
            discharged = 0.0;
            spill = (storable - charged) / eff;
        } else {
            charged = 0.0;
            discharged = (consumed - harvested) / eff;
            spill = 0.0;
        }
        level = level + charged - discharged;
        let balance = harvested + discharged * eff - charged / eff - spill;
        assert!(
            (balance - consumed).abs() < 1e-9,
            "day {} hour {}: balance {balance} vs consumption {consumed}",
            h.day,
            h.hour
        );
        assert!(
            (level - h.battery_level.joules()).abs() < 1e-9,
            "day {} hour {}: replayed level {level} vs recorded {}",
            h.day,
            h.hour,
            h.battery_level.joules()
        );
        assert!((-1e-9..=cap + 1e-9).contains(&level), "level {level}");
        level = h.battery_level.joules();
    }
}

#[test]
fn energy_conservation_holds_hour_by_hour_on_blacked_out_traces() {
    let source = BlackoutOverlay::new(SourceKind::OutdoorSolar.instantiate(2), 21, FRACTION)
        .expect("valid overlay");
    let trace = source.generate(244, 4).expect("trace generates");
    let capacity = Energy::from_joules(60.0);
    let initial = Energy::from_joules(20.0);
    let eff = 0.9;
    for policy in policies() {
        let scenario = Scenario::builder(trace.clone())
            .points(reap_device::paper_table2_operating_points())
            .battery(Battery::new(capacity, initial, eff, eff).expect("valid battery"))
            .build()
            .expect("valid scenario");
        let report = scenario.run(policy).expect("runs under blackout");
        assert_eq!(report.hours().len(), 4 * 24);
        assert_energy_conserved(&report, initial, capacity, eff);
    }
}
