//! Variable-dt-vs-scalar equivalence: the event-driven core
//! ([`Scenario::run_event_driven`]) at `dt = 3600` with intermittency
//! disabled must reproduce the scalar hourly engine ([`Scenario::run`])
//! **bit for bit on every policy** — the same pin the SoA fleet core
//! carries. Both engines route through the same extracted hour planner
//! and execution step, so at one step per hour the event core performs
//! literally the same arithmetic in the same order; these tests keep it
//! that way.
//!
//! Random scenarios cover all four [`SourceKind`]s, every allocator,
//! both budget modes, and every scalar-capable policy (REAP, all five
//! statics, receding-horizon MPC at several lookaheads). A second,
//! seeded suite checks the sub-hour battery mode against the scalar
//! run's open-loop budgets.

use proptest::prelude::*;
use reap_core::OperatingPoint;
use reap_harvest::SourceKind;
use reap_sim::{AllocatorKind, BudgetMode, ForecasterKind, Policy, Scenario};
use reap_units::Power;

fn paper_points() -> Vec<OperatingPoint> {
    let specs = [
        (1u8, 0.94, 2.76),
        (2, 0.93, 2.30),
        (3, 0.92, 1.82),
        (4, 0.90, 1.64),
        (5, 0.76, 1.20),
    ];
    specs
        .iter()
        .map(|&(id, a, mw)| {
            OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw)).unwrap()
        })
        .collect()
}

#[derive(Debug, Clone)]
struct Setup {
    source: SourceKind,
    seed: u64,
    days: u32,
    alpha: f64,
    allocator: AllocatorKind,
    budget_mode: BudgetMode,
    policy: Policy,
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Reap),
        (1u8..=5).prop_map(Policy::Static),
        prop_oneof![Just(1usize), Just(4), Just(24)]
            .prop_map(|lookahead| Policy::Horizon { lookahead }),
    ]
}

fn arb_setup() -> impl Strategy<Value = Setup> {
    (
        proptest::sample::select(SourceKind::ALL.to_vec()),
        0u64..=u64::MAX,
        1u32..=4,
        prop_oneof![Just(0.5), Just(1.0), Just(2.0)],
        prop_oneof![
            Just(AllocatorKind::Ewma),
            Just(AllocatorKind::Greedy),
            Just(AllocatorKind::UniformDaily),
        ],
        prop_oneof![Just(BudgetMode::OpenLoop), Just(BudgetMode::ClosedLoop)],
        arb_policy(),
    )
        .prop_map(
            |(source, seed, days, alpha, allocator, budget_mode, policy)| Setup {
                source,
                seed,
                days,
                alpha,
                allocator,
                budget_mode,
                policy,
            },
        )
}

fn scenario(setup: &Setup) -> Scenario {
    let trace = setup
        .source
        .instantiate(setup.seed)
        .generate(244, setup.days)
        .expect("bundled sources generate");
    Scenario::builder(trace)
        .points(paper_points())
        .alpha(setup.alpha)
        .allocator(setup.allocator)
        .budget_mode(setup.budget_mode)
        .forecaster(ForecasterKind::Ewma)
        .build()
        .expect("valid scenario")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn event_core_at_one_hour_dt_is_bit_identical_to_the_scalar_engine(
        setup in arb_setup()
    ) {
        let scenario = scenario(&setup);
        prop_assert!(!scenario.uses_event_core(), "default dt is the hour");
        let scalar = scenario.run(setup.policy).expect("scalar engine runs");
        let event = scenario
            .run_event_driven(setup.policy)
            .expect("event core runs");
        // Bit-for-bit: every hour record — budget, plan, realized
        // fraction, battery level — compares exactly equal, not within
        // a tolerance.
        prop_assert_eq!(&event.report, &scalar, "{} diverged", setup.policy);
        // Battery mode commits exactly one epoch per trace hour.
        let hours = u64::from(setup.days) * 24;
        prop_assert_eq!(event.stats.epochs_committed, hours);
    }
}

#[test]
fn every_policy_is_bit_identical_on_one_seeded_month() {
    // The proptest samples the policy space; this pins one full-length
    // trace per source against every policy deterministically, so a
    // divergence names the policy in the failure message.
    let policies: Vec<Policy> = [Policy::Reap, Policy::Horizon { lookahead: 12 }]
        .into_iter()
        .chain((1u8..=5).map(Policy::Static))
        .collect();
    for source in SourceKind::ALL {
        let trace = source.instantiate(2019).generate(244, 7).unwrap();
        let scenario = Scenario::builder(trace)
            .points(paper_points())
            .alpha(1.0)
            .build()
            .unwrap();
        for &policy in &policies {
            let scalar = scenario.run(policy).unwrap();
            let event = scenario.run_event_driven(policy).unwrap();
            assert_eq!(event.report, scalar, "{source:?} under {policy} diverged");
        }
    }
}

#[test]
fn sub_hour_dt_keeps_open_loop_budgets_and_converges_on_the_scalar_run() {
    // At dt < 3600 the battery-mode core splits each hour's plan into
    // equal steps. Open-loop budgets depend only on the trace, so they
    // must stay bitwise equal to the scalar engine's; execution differs
    // only by when within the hour the battery clamps, which is float
    // noise whenever the store never pins — so levels track to 1e-9 J.
    for dt in [1800u32, 900, 600, 60] {
        for source in SourceKind::ALL {
            let trace = source.instantiate(7).generate(244, 3).unwrap();
            let hourly = Scenario::builder(trace.clone())
                .points(paper_points())
                .alpha(1.0)
                .build()
                .unwrap();
            let scalar = hourly.run(Policy::Reap).unwrap();
            let sub = Scenario::builder(trace)
                .points(paper_points())
                .alpha(1.0)
                .dt_seconds(dt)
                .build()
                .unwrap();
            assert!(sub.uses_event_core());
            // `Scenario::run` itself dispatches to the event core here.
            let run = sub.run(Policy::Reap).unwrap();
            assert_eq!(run.hours().len(), scalar.hours().len());
            for (e, s) in run.hours().iter().zip(scalar.hours()) {
                assert_eq!(e.harvested, s.harvested, "{source:?} dt={dt}");
                assert_eq!(e.budget, s.budget, "{source:?} dt={dt}");
                assert!(
                    (e.realized_fraction - s.realized_fraction).abs() <= 1e-9,
                    "{source:?} dt={dt} day {} hour {}: fraction {} vs {}",
                    e.day,
                    e.hour,
                    e.realized_fraction,
                    s.realized_fraction
                );
                assert!(
                    (e.battery_level.joules() - s.battery_level.joules()).abs() <= 1e-9,
                    "{source:?} dt={dt} day {} hour {}: level {} vs {}",
                    e.day,
                    e.hour,
                    e.battery_level.joules(),
                    s.battery_level.joules()
                );
            }
        }
    }
}

#[test]
fn intermittent_policy_is_rejected_without_an_intermittent_store() {
    let trace = SourceKind::BodyHeat
        .instantiate(1)
        .generate(244, 1)
        .unwrap();
    let scenario = Scenario::builder(trace)
        .points(paper_points())
        .build()
        .unwrap();
    assert!(scenario.run(Policy::Intermittent).is_err());
    assert!(scenario.run_event_driven(Policy::Intermittent).is_err());
}
