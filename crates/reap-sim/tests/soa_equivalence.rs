//! SoA-vs-scalar equivalence: the data-oriented fleet core
//! ([`reap_sim::SoaFleet`]) must agree with scalar per-user replay
//! ([`Fleet::user_scenario`] + the hour-by-hour engine) on every user's
//! final scalars — accuracy and active time to within 1e-12 (bitwise, in
//! practice), brownout hours exactly.
//!
//! Random small fleets cover all four [`SourceKind`]s (the builder
//! default round-robins them), every allocator, odd shard sizes, and
//! both the SoA-kernel policies (REAP, static) and the scalar-fallback
//! receding-horizon policy.

use std::num::NonZeroUsize;

use proptest::prelude::*;
use reap_core::OperatingPoint;
use reap_sim::{AllocatorKind, Fleet, Policy, SimReport, SoaFleet, UserOutcome};
use reap_units::Power;

fn paper_points() -> Vec<OperatingPoint> {
    let specs = [
        (1u8, 0.94, 2.76),
        (2, 0.93, 2.30),
        (3, 0.92, 1.82),
        (4, 0.90, 1.64),
        (5, 0.76, 1.20),
    ];
    specs
        .iter()
        .map(|&(id, a, mw)| {
            OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw)).unwrap()
        })
        .collect()
}

#[derive(Debug, Clone)]
struct Setup {
    users: u32,
    days: u32,
    seed: u64,
    allocator: AllocatorKind,
    policy: Policy,
    shard: usize,
}

fn arb_allocator() -> impl Strategy<Value = AllocatorKind> {
    prop_oneof![
        Just(AllocatorKind::Ewma),
        Just(AllocatorKind::Greedy),
        Just(AllocatorKind::UniformDaily),
    ]
}

fn arb_setup() -> impl Strategy<Value = Setup> {
    let policy = prop_oneof![Just(Policy::Reap), (1u8..=5).prop_map(Policy::Static)];
    (
        1u32..=64,
        1u32..=3,
        0u64..=u64::MAX,
        arb_allocator(),
        policy,
        1usize..=65,
    )
        .prop_map(|(users, days, seed, allocator, policy, shard)| Setup {
            users,
            days,
            seed,
            allocator,
            policy,
            shard,
        })
}

fn build_fleet(setup: &Setup) -> Fleet {
    Fleet::builder(paper_points())
        .users(setup.users)
        .days(setup.days)
        .seed(setup.seed)
        .allocator(setup.allocator)
        .policy(setup.policy)
        .shard_users(NonZeroUsize::new(setup.shard).expect("shard range starts at 1"))
        .build()
        .expect("valid fleet")
}

/// The scalar engine's per-user scalars, reduced exactly as
/// `Fleet::run`'s accumulator reduces them.
fn scalar_outcome(report: &SimReport, days: u32) -> UserOutcome {
    UserOutcome {
        accuracy: report.mean_accuracy(),
        active_fraction: report.total_active_time().hours() / (f64::from(days) * 24.0),
        brownout_hours: u32::try_from(report.brownout_hours()).expect("small fleet"),
        harvested_j: report.total_harvested().joules(),
    }
}

fn assert_outcomes_match(soa: &UserOutcome, scalar: &UserOutcome, user: u32) {
    assert!(
        (soa.accuracy - scalar.accuracy).abs() <= 1e-12,
        "user {user}: SoA accuracy {} vs scalar {}",
        soa.accuracy,
        scalar.accuracy
    );
    assert!(
        (soa.active_fraction - scalar.active_fraction).abs() <= 1e-12,
        "user {user}: SoA active fraction {} vs scalar {}",
        soa.active_fraction,
        scalar.active_fraction
    );
    assert_eq!(
        soa.brownout_hours, scalar.brownout_hours,
        "user {user}: brownout hours diverged"
    );
    let scale = scalar.harvested_j.abs().max(1.0);
    assert!(
        (soa.harvested_j - scalar.harvested_j).abs() <= 1e-9 * scale,
        "user {user}: SoA harvested {} J vs scalar {} J",
        soa.harvested_j,
        scalar.harvested_j
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn soa_core_matches_scalar_replay_per_user(setup in arb_setup()) {
        let fleet = build_fleet(&setup);
        let soa = SoaFleet::new(&fleet).expect("SoA build");
        prop_assert!(soa.supports_policy());
        let outcomes = soa.run(None);
        prop_assert_eq!(outcomes.len(), setup.users as usize);
        for user in 0..setup.users {
            let report = fleet
                .user_scenario(user)
                .expect("replayable user")
                .run(setup.policy)
                .expect("scalar engine runs");
            let scalar = scalar_outcome(&report, setup.days);
            assert_outcomes_match(&outcomes[user as usize], &scalar, user);
        }
    }

    #[test]
    fn horizon_fleet_matches_scalar_replay(
        (users, days, seed, allocator, lookahead) in (
            1u32..=10,
            1u32..=2,
            0u64..=u64::MAX,
            arb_allocator(),
            prop_oneof![Just(1usize), Just(4), Just(12)],
        )
    ) {
        // Policy::Horizon falls back to the scalar engine inside
        // `Fleet::run`; the property pinned here is that the fleet path
        // (shared base traces, copy-on-perturb) aggregates exactly what
        // per-user replay produces.
        let policy = Policy::Horizon { lookahead };
        let fleet = Fleet::builder(paper_points())
            .users(users)
            .days(days)
            .seed(seed)
            .allocator(allocator)
            .policy(policy)
            .build()
            .expect("valid fleet");
        prop_assert!(!SoaFleet::new(&fleet).expect("SoA build").supports_policy());
        let report = fleet.run().expect("fleet run");
        let mut acc_sum = 0.0f64;
        let mut act_sum = 0.0f64;
        let mut brownouts = 0u64;
        for user in 0..users {
            let scalar = scalar_outcome(
                &fleet
                    .user_scenario(user)
                    .expect("replayable user")
                    .run(policy)
                    .expect("scalar engine runs"),
                days,
            );
            acc_sum += scalar.accuracy;
            act_sum += scalar.active_fraction;
            brownouts += u64::from(scalar.brownout_hours);
        }
        let n = f64::from(users);
        prop_assert!((report.mean_accuracy() - acc_sum / n).abs() <= 1e-12);
        prop_assert!((report.mean_active_fraction() - act_sum / n).abs() <= 1e-12);
        prop_assert_eq!(report.brownout_hours(), brownouts);
    }
}

#[test]
fn p5_straggler_replays_on_the_scalar_engine() {
    // The acceptance-criteria workflow: run a fleet on the SoA core, find
    // the straggler end of the accuracy distribution, and replay that
    // individual month on the old scalar engine.
    let fleet = Fleet::builder(paper_points())
        .users(40)
        .days(2)
        .seed(1234)
        .build()
        .expect("valid fleet");
    let soa = SoaFleet::new(&fleet).expect("SoA build");
    let outcomes = soa.run(None);
    let straggler = (0..40u32)
        .min_by(|&a, &b| {
            outcomes[a as usize]
                .accuracy
                .total_cmp(&outcomes[b as usize].accuracy)
        })
        .expect("non-empty fleet");
    let report = fleet
        .user_scenario(straggler)
        .expect("straggler reconstructs")
        .run(Policy::Reap)
        .expect("scalar engine runs");
    assert_outcomes_match(
        &outcomes[straggler as usize],
        &scalar_outcome(&report, 2),
        straggler,
    );
}
