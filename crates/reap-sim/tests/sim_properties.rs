//! Property tests for the simulation engine: hourly energy conservation
//! under arbitrary traces, batteries, and policies — including the
//! receding-horizon [`Policy::Horizon`].
//!
//! The accounting identity under test: per hour,
//! `harvested + discharged - charged - spill` equals the realized
//! consumption, the battery level never goes negative, and it never
//! exceeds capacity. The engine does not expose its internal
//! charge/discharge amounts, so the test replays the battery model from
//! each hour's public record (`harvested`, planned schedule, realized
//! fraction) and demands the recorded end-of-hour level match to 1e-9.

use proptest::prelude::*;
use reap_core::OperatingPoint;
use reap_harvest::{Battery, HarvestTrace};
use reap_sim::{AllocatorKind, BudgetMode, ForecasterKind, Policy, Scenario, SimReport};
use reap_units::{Energy, Power};

fn paper_points() -> Vec<OperatingPoint> {
    let specs = [
        (1u8, 0.94, 2.76),
        (2, 0.93, 2.30),
        (3, 0.92, 1.82),
        (4, 0.90, 1.64),
        (5, 0.76, 1.20),
    ];
    specs
        .iter()
        .map(|&(id, a, mw)| {
            OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw)).unwrap()
        })
        .collect()
}

#[derive(Debug, Clone)]
struct Setup {
    hourly_j: Vec<f64>,
    policy: Policy,
    budget_mode: BudgetMode,
    allocator: AllocatorKind,
    forecaster: ForecasterKind,
    initial_j: f64,
    efficiency: f64,
}

fn arb_setup() -> impl Strategy<Value = Setup> {
    let policy = prop_oneof![
        Just(Policy::Reap),
        (1u8..=5).prop_map(Policy::Static),
        prop_oneof![Just(1usize), Just(4), Just(12), Just(24)]
            .prop_map(|lookahead| Policy::Horizon { lookahead }),
    ];
    let budget_mode = prop_oneof![Just(BudgetMode::OpenLoop), Just(BudgetMode::ClosedLoop)];
    let allocator = prop_oneof![
        Just(AllocatorKind::Ewma),
        Just(AllocatorKind::Greedy),
        Just(AllocatorKind::UniformDaily),
    ];
    let forecaster = prop_oneof![
        Just(ForecasterKind::Ewma),
        (0.0f64..0.5, 0u64..100)
            .prop_map(|(rel_error, seed)| ForecasterKind::Oracle { rel_error, seed }),
    ];
    (
        (
            proptest::collection::vec(0.0f64..8.0, 48..=48),
            policy,
            budget_mode,
        ),
        (allocator, forecaster, 0.0f64..60.0, 0.7f64..=1.0),
    )
        .prop_map(
            |((hourly_j, policy, budget_mode), (allocator, forecaster, initial_j, efficiency))| {
                Setup {
                    hourly_j,
                    policy,
                    budget_mode,
                    allocator,
                    forecaster,
                    initial_j,
                    efficiency,
                }
            },
        )
}

/// Replays the battery model from the public hour records and checks the
/// conservation identity against the recorded levels.
fn assert_energy_conserved(report: &SimReport, initial: Energy, capacity: Energy, eff: f64) {
    let mut level = initial.joules();
    let cap = capacity.joules();
    for h in report.hours() {
        assert!(
            (0.0..=1.0).contains(&h.realized_fraction),
            "day {} hour {}: realized fraction {}",
            h.day,
            h.hour,
            h.realized_fraction
        );
        // Realized consumption: the engine browns the plan out
        // proportionally, so consumed = planned * fraction.
        let consumed = h.planned.energy().joules() * h.realized_fraction;
        let harvested = h.harvested.joules();
        let (charged, discharged, spill);
        if harvested >= consumed {
            // Surplus hour: the excess charges the battery; whatever the
            // full battery cannot hold spills.
            let storable = (harvested - consumed) * eff;
            charged = storable.min(cap - level);
            discharged = 0.0;
            spill = (storable - charged) / eff;
        } else {
            // Deficit hour: the battery covers the difference (it always
            // can — a deeper shortfall would have browned out further).
            charged = 0.0;
            discharged = (consumed - harvested) / eff;
            spill = 0.0;
        }
        level = level + charged - discharged;
        // The identity from the issue: harvested + discharged*eff
        // (delivered) - charged/eff (stored input) - spill = consumption
        // is equivalent to the level replay matching; assert both ends.
        let delivered = discharged * eff;
        let stored_input = if eff > 0.0 { charged / eff } else { 0.0 };
        let balance = harvested + delivered - stored_input - spill;
        assert!(
            (balance - consumed).abs() < 1e-9,
            "day {} hour {}: energy balance {balance} vs consumption {consumed}",
            h.day,
            h.hour
        );
        assert!(
            (level - h.battery_level.joules()).abs() < 1e-9,
            "day {} hour {}: replayed level {level} vs recorded {}",
            h.day,
            h.hour,
            h.battery_level.joules()
        );
        assert!(level >= -1e-9, "battery went negative: {level}");
        assert!(level <= cap + 1e-9, "battery above capacity: {level}");
        level = h.battery_level.joules();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_policy_conserves_energy_hour_by_hour(setup in arb_setup()) {
        let capacity = Energy::from_joules(60.0);
        let initial = Energy::from_joules(setup.initial_j);
        let battery = Battery::new(capacity, initial, setup.efficiency, setup.efficiency)
            .expect("valid battery");
        let trace = HarvestTrace::new(
            244,
            setup.hourly_j.iter().map(|&j| Energy::from_joules(j)).collect(),
        )
        .expect("valid trace");
        let scenario = Scenario::builder(trace)
            .points(paper_points())
            .allocator(setup.allocator)
            .budget_mode(setup.budget_mode)
            .forecaster(setup.forecaster)
            .battery(battery)
            .build()
            .expect("valid scenario");
        let report = scenario.run(setup.policy).expect("engine runs");
        prop_assert_eq!(report.hours().len(), 48);
        assert_energy_conserved(&report, initial, capacity, setup.efficiency);
    }
}
