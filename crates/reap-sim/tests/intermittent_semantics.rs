//! Batteryless intermittent operation semantics, pinned three ways:
//!
//! 1. **Energy conservation** — a proptest over random traces, failure
//!    schedules, leakages, and taxes: the event core's ledger must
//!    balance to 1e-9 J (power failures, checkpoint/restore taxes and
//!    leakage never *create* energy), and a node whose store can never
//!    reach the turn-on threshold provably does zero work.
//! 2. **Checkpoint/restore crash semantics** — a SIGKILL-style power
//!    failure injected at every event-loop timestamp of a baseline run
//!    loses at most the volatile window since the last checkpoint:
//!    every fully-elapsed hour before the kill stays bitwise identical,
//!    the kill costs at most one in-flight epoch, and the ledger still
//!    balances at every crash point.
//! 3. **Fleet integration** — a 30%-blackout body-heat-TEG fleet on
//!    [`Policy::Intermittent`] completes through the scalar-fallback
//!    path with a sane, thread-count-independent report.

use proptest::prelude::*;
use reap_core::OperatingPoint;
use reap_harvest::{Capacitor, SourceKind};
use reap_sim::{Fleet, IntermittentConfig, Policy, Scenario, SimError, VdtRun};
use reap_units::{Energy, Power};

fn paper_points() -> Vec<OperatingPoint> {
    let specs = [
        (1u8, 0.94, 2.76),
        (2, 0.93, 2.30),
        (3, 0.92, 1.82),
        (4, 0.90, 1.64),
        (5, 0.76, 1.20),
    ];
    specs
        .iter()
        .map(|&(id, a, mw)| {
            OperatingPoint::new(id, format!("DP{id}"), a, Power::from_milliwatts(mw)).unwrap()
        })
        .collect()
}

fn intermittent_scenario(
    source: SourceKind,
    seed: u64,
    days: u32,
    dt: u32,
    config: IntermittentConfig,
    trace_events: bool,
) -> Scenario {
    let trace = source
        .instantiate(seed)
        .generate(244, days)
        .expect("bundled sources generate");
    Scenario::builder(trace)
        .points(paper_points())
        .alpha(1.0)
        .dt_seconds(dt)
        .intermittent(config)
        .trace_events(trace_events)
        .build()
        .expect("valid scenario")
}

/// The conservation obligations every intermittent run carries,
/// whatever the policy, failure schedule, or capacitor.
fn assert_ledger_sane(run: &VdtRun, label: &str) {
    let s = &run.stats;
    assert!(
        s.ledger_drift().abs() <= 1e-9,
        "{label}: ledger drift {} J",
        s.ledger_drift()
    );
    let eta_in = s.harvest_offered_j; // η <= 1, so this over-bounds
    assert!(
        s.stored_j <= eta_in + 1e-9,
        "{label}: stored {} J exceeds harvest offered {} J",
        s.stored_j,
        eta_in
    );
    assert!(
        s.spilled_j <= s.harvest_offered_j + 1e-9,
        "{label}: spilled {} J exceeds harvest offered {} J",
        s.spilled_j,
        s.harvest_offered_j
    );
    // Nothing in the pipeline creates energy.
    assert!(
        s.final_store_j <= s.initial_store_j + s.stored_j + 1e-9,
        "{label}: final level {} J above initial {} + stored {}",
        s.final_store_j,
        s.initial_store_j,
        s.stored_j
    );
    for field in [
        s.stored_j,
        s.spilled_j,
        s.consumed_j,
        s.leaked_j,
        s.checkpoint_j,
        s.restore_j,
        s.final_store_j,
    ] {
        assert!(
            field >= 0.0 && field.is_finite(),
            "{label}: ledger field {field}"
        );
    }
    for h in run.report.hours() {
        assert!(
            (0.0..=1.0).contains(&h.realized_fraction),
            "{label}: realized fraction {} out of range",
            h.realized_fraction
        );
    }
}

#[derive(Debug, Clone)]
struct ConservationSetup {
    source: SourceKind,
    seed: u64,
    days: u32,
    dt: u32,
    policy: Policy,
    leakage_uw: f64,
    checkpoint_mj: f64,
    restore_mj: f64,
    failures: Vec<(u64, u64)>,
}

fn arb_conservation() -> impl Strategy<Value = ConservationSetup> {
    let policy = prop_oneof![
        Just(Policy::Intermittent),
        Just(Policy::Reap),
        (1u8..=5).prop_map(Policy::Static),
        Just(Policy::Horizon { lookahead: 6 }),
    ];
    // Random failure schedule: gaps + durations prefix-summed into
    // sorted, non-overlapping [start, end) windows.
    let failures =
        proptest::collection::vec((0u64..40_000, 600u64..30_000), 0..5).prop_map(|segments| {
            let mut windows = Vec::with_capacity(segments.len());
            let mut t = 0u64;
            for (gap, dur) in segments {
                let start = t + gap;
                windows.push((start, start + dur));
                t = start + dur;
            }
            windows
        });
    (
        proptest::sample::select(SourceKind::ALL.to_vec()),
        0u64..=u64::MAX,
        1u32..=3,
        prop_oneof![Just(3600u32), Just(900), Just(300)],
        policy,
        prop_oneof![Just(0.0), Just(20.0), Just(400.0)],
        prop_oneof![Just(0.0), Just(2.0), Just(8.0)],
        prop_oneof![Just(0.0), Just(5.0), Just(20.0)],
        failures,
    )
        .prop_map(
            |(source, seed, days, dt, policy, leakage_uw, checkpoint_mj, restore_mj, failures)| {
                ConservationSetup {
                    source,
                    seed,
                    days,
                    dt,
                    policy,
                    leakage_uw,
                    checkpoint_mj,
                    restore_mj,
                    failures,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn the_energy_ledger_balances_under_random_failures_and_taxes(
        setup in arb_conservation()
    ) {
        let cap = Capacitor::new(
            0.100,
            3.3,
            2.8,
            1.8,
            Power::from_microwatts(setup.leakage_uw),
            0.90,
            1.8,
        )
        .expect("valid capacitor");
        let config = IntermittentConfig::new(
            cap,
            Energy::from_joules(setup.checkpoint_mj * 1e-3),
            Energy::from_joules(setup.restore_mj * 1e-3),
        )
        .expect("taxes fit the hysteresis band")
        .with_failures(setup.failures.clone())
        .expect("windows are sorted and non-overlapping");
        let scenario = intermittent_scenario(
            setup.source,
            setup.seed,
            setup.days,
            setup.dt,
            config,
            false,
        );
        let run = scenario
            .run_event_driven(setup.policy)
            .expect("intermittent run completes");
        prop_assert_eq!(
            run.report.hours().len(),
            setup.days as usize * 24,
            "one record per trace hour, dead or alive"
        );
        assert_ledger_sane(&run, &format!("{:?}/{}", setup.source, setup.policy));
        // `Scenario::run` routes through the same core: identical report.
        let dispatched = scenario.run(setup.policy).expect("dispatch runs");
        prop_assert_eq!(&dispatched, &run.report);
    }
}

#[test]
fn a_store_that_cannot_reach_turn_on_provably_does_zero_work() {
    // Leakage far above the strongest possible charge rate: the store
    // never reaches the turn-on threshold, so the node must never boot,
    // never draw, and never commit — wasting away below v_on is *off*,
    // not degraded operation.
    for policy in [Policy::Intermittent, Policy::Reap] {
        let trace = SourceKind::BodyHeat
            .instantiate(9)
            .generate(244, 2)
            .unwrap();
        let peak_w = trace.peak().joules() / 3600.0;
        let leakage = Power::from_microwatts(peak_w * 1e6 * 2.0);
        let cap =
            Capacitor::new(0.100, 3.3, 2.8, 1.8, leakage, 0.90, 2.0).expect("valid capacitor");
        assert!(
            !cap.can_turn_on(),
            "2.0 V start sits below the 2.8 V turn-on"
        );
        let config =
            IntermittentConfig::new(cap, Energy::from_joules(0.002), Energy::from_joules(0.005))
                .unwrap();
        let scenario = Scenario::builder(trace)
            .points(paper_points())
            .dt_seconds(600)
            .intermittent(config)
            .build()
            .unwrap();
        let run = scenario.run_event_driven(policy).unwrap();
        assert_eq!(run.stats.bursts, 0, "{policy}: booted below turn-on");
        assert_eq!(run.stats.epochs_committed, 0, "{policy}");
        assert_eq!(run.stats.committed_objective, 0.0, "{policy}");
        assert_eq!(run.stats.consumed_j, 0.0, "{policy}");
        assert_eq!(run.stats.restore_j, 0.0, "{policy}");
        assert_eq!(run.stats.checkpoint_j, 0.0, "{policy}");
        assert!(
            run.report
                .hours()
                .iter()
                .all(|h| h.realized_fraction == 0.0),
            "{policy}: a dead node did work"
        );
        assert_ledger_sane(&run, "below-turn-on");
    }
}

/// Runs the crash-point drill for one (policy, dt) cell: SIGKILL (a
/// permanent forced failure) at every event timestamp of the traced
/// baseline run.
fn crash_at_every_event(policy: Policy, dt: u32) {
    let config = IntermittentConfig::wearable_default();
    let scenario = intermittent_scenario(SourceKind::BodyHeat, 2019, 1, dt, config.clone(), true);
    let baseline = scenario.run_event_driven(policy).expect("baseline runs");
    assert!(
        baseline.stats.epochs_committed > 0,
        "the drill needs a baseline that commits work"
    );
    let end_s = baseline.report.hours().len() as u64 * 3600;
    let mut kill_times: Vec<u64> = baseline.events.iter().map(|e| e.at_s).collect();
    kill_times.dedup();
    assert!(kill_times.len() > 30, "event log too sparse to drill");
    for &t in &kill_times {
        if t >= end_s {
            continue;
        }
        // The power fails at t and never comes back.
        let killed_config = config
            .clone()
            .with_failures(vec![(t, end_s + 1)])
            .expect("single window is valid");
        let killed = intermittent_scenario(SourceKind::BodyHeat, 2019, 1, dt, killed_config, false)
            .run_event_driven(policy)
            .unwrap_or_else(|e| panic!("kill at {t}s: {e}"));
        assert_ledger_sane(&killed, &format!("kill at {t}s"));
        // Persistent state is never corrupted and nothing before the
        // volatile window is lost: every fully-elapsed hour before the
        // kill is bitwise identical to the uninterrupted run.
        let full_hours_before = (t / 3600) as usize;
        for (h, (k, b)) in killed
            .report
            .hours()
            .iter()
            .zip(baseline.report.hours())
            .enumerate()
            .take(full_hours_before)
        {
            assert_eq!(k, b, "kill at {t}s: prefix hour {h} diverged");
        }
        // The kill costs at most the one in-flight epoch. The killed
        // run's losses are the (identical) prefix losses plus at most
        // one, and the prefix can't have lost more than the whole
        // baseline did.
        assert!(
            killed.stats.epochs_lost <= baseline.stats.epochs_lost + 1,
            "kill at {t}s: lost {} epochs vs baseline {} + 1",
            killed.stats.epochs_lost,
            baseline.stats.epochs_lost
        );
        // Work only shrinks when the plug is pulled for good.
        assert!(
            killed.stats.committed_objective <= baseline.stats.committed_objective + 1e-12,
            "kill at {t}s: committed objective grew"
        );
        assert!(
            killed.stats.committed_active_s <= baseline.stats.committed_active_s + 1e-9,
            "kill at {t}s: committed active time grew"
        );
        // And the node stays provably dead afterwards.
        let first_dead_hour = (t / 3600) as usize + 1;
        for h in killed.report.hours().iter().skip(first_dead_hour) {
            assert_eq!(
                h.realized_fraction, 0.0,
                "kill at {t}s: work after a permanent outage"
            );
        }
    }
}

#[test]
fn sigkill_at_every_event_point_loses_at_most_the_volatile_window_intermittent() {
    // dt = 300 s: the wearable capacitor's usable burst (~0.23 J) fits
    // several 300 s epochs but not one 900 s epoch, so this is the
    // finest granularity at which the baseline actually commits work.
    crash_at_every_event(Policy::Intermittent, 300);
}

#[test]
fn sigkill_at_every_event_point_loses_at_most_the_volatile_window_hourly() {
    // The hourly policies run on the capacitor too; their crash
    // semantics are identical (the budget layer's memory is part of the
    // volatile window).
    crash_at_every_event(Policy::Reap, 300);
}

#[test]
fn intermittent_fleet_under_blackout_completes_with_a_sane_report() {
    // The acceptance scenario: a body-heat-TEG fleet with 30% of every
    // day blacked out, every user on the wearable capacitor under the
    // burst policy. Routes through the scalar fallback (the SoA kernels
    // are hourly-battery only) and must stay thread-count deterministic.
    let fleet = Fleet::builder(paper_points())
        .users(12)
        .days(2)
        .seed(2019)
        .sources(vec![SourceKind::BodyHeat])
        .blackout(21, 0.30)
        .policy(Policy::Intermittent)
        .intermittent(IntermittentConfig::wearable_default())
        .build()
        .expect("valid intermittent fleet");
    let report = fleet.run().expect("fleet completes");
    assert_eq!(report.users(), 12);
    assert_eq!(report.soa_bytes_per_user(), 0, "scalar fallback expected");
    let acc = report.accuracy();
    assert!(0.0 <= acc.p5 && acc.p5 <= acc.p50 && acc.p50 <= acc.p95 && acc.p95 <= 1.0);
    assert!((0.0..=1.0).contains(&report.mean_active_fraction()));
    let single = fleet
        .run_with_threads(Some(std::num::NonZeroUsize::MIN))
        .expect("single-threaded run");
    assert_eq!(single, report, "intermittent fleet diverged across threads");
    // Any user replays individually on the event core with a balanced
    // ledger.
    let run = fleet
        .user_scenario(3)
        .expect("replayable user")
        .run_event_driven(Policy::Intermittent)
        .expect("replay runs");
    assert_ledger_sane(&run, "fleet user 3");
}

#[test]
fn fleet_builder_rejects_intermittent_policy_without_a_store() {
    let err = Fleet::builder(paper_points())
        .policy(Policy::Intermittent)
        .build();
    assert!(matches!(err, Err(SimError::InvalidParameter(_))));
    let err = Fleet::builder(paper_points()).dt_seconds(7).build();
    assert!(matches!(err, Err(SimError::InvalidParameter(_))));
}
