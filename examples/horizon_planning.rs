//! Lookahead energy allocation: jointly plan 24 hours against a harvest
//! forecast and a battery, and compare with myopic spend-as-harvested
//! planning — the extension that closes the loop the paper delegates to
//! "energy allocation techniques".
//!
//! ```text
//! cargo run --release --example horizon_planning
//! ```

use reap::core::{plan_horizon, ReapProblem};
use reap::harvest::HarvestTrace;
use reap::units::Energy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = ReapProblem::builder()
        .points(reap::device::paper_table2_operating_points())
        .build()?;

    // Take day 3 of the September trace as the forecast.
    let trace = HarvestTrace::september_like(2019);
    let day = 3;
    let forecast: Vec<Energy> = (0..24).map(|h| trace.energy(day, h)).collect();
    let battery0 = Energy::from_joules(10.0);
    let capacity = Energy::from_joules(60.0);

    let plan = plan_horizon(&problem, &forecast, battery0, capacity)?;

    println!("24-hour joint plan (day {day} of the September trace):\n");
    println!(
        "{:>5} {:>9} {:>22} {:>10} {:>10}",
        "hour", "harvest", "schedule", "E[acc]", "battery"
    );
    for (h, schedule) in plan.schedules.iter().enumerate() {
        let mix: Vec<String> = schedule
            .allocations()
            .iter()
            .map(|a| {
                format!(
                    "{}:{:.0}%",
                    a.point.label(),
                    (a.duration / schedule.period()) * 100.0
                )
            })
            .collect();
        println!(
            "{h:>5} {:>8.2}J {:>22} {:>9.1}% {:>9.1}J",
            forecast[h].joules(),
            if mix.is_empty() {
                "off".to_string()
            } else {
                mix.join(" ")
            },
            schedule.expected_accuracy() * 100.0,
            plan.battery_trajectory[h].joules(),
        );
    }

    // Myopic comparison: every hour spends exactly its own harvest.
    let myopic: f64 = forecast
        .iter()
        .map(|&e| {
            let budget = e.max(problem.min_budget());
            if e >= problem.min_budget() {
                problem
                    .solve(budget)
                    .map(|s| s.objective(1.0))
                    .unwrap_or(0.0)
            } else {
                0.0
            }
        })
        .sum();
    println!(
        "\ntotal J: lookahead {:.2} vs myopic spend-as-harvested {:.2} ({:+.0}%)",
        plan.total_objective(1.0),
        myopic,
        (plan.total_objective(1.0) / myopic - 1.0) * 100.0
    );
    println!(
        "active time: lookahead {:.1} h (banked noon surplus covers the night)",
        plan.total_active_time().hours()
    );
    Ok(())
}
