//! A complete daemon session: in-process server, real TCP client.
//!
//! ```text
//! cargo run --release --example serve_client
//! ```
//!
//! Stands up a `reap-serve` daemon on `127.0.0.1:0` (the kernel picks
//! the port — nothing is hardcoded), then drives a client session over
//! actual loopback TCP: handshake, a simulated day of observations,
//! an allocation decision, fleet statistics, a checkpoint, and a
//! graceful in-band shutdown. The CI smoke test runs this example
//! end-to-end and fails on any nonzero exit.

use reap::serve::{Client, FleetState, Request, Response, Server, ServerConfig};
use reap::sim::Fleet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small resident population derived from the same seeded fleet
    // definition the simulator uses.
    let fleet = Fleet::builder(reap::device::paper_table2_operating_points())
        .users(64)
        .days(1)
        .seed(11)
        .build()?;
    let trace = fleet.user_scenario(7)?.trace().clone();

    let state = FleetState::new(&fleet, 8)?;
    let server = Server::bind("127.0.0.1:0", state, ServerConfig::default())?;
    let addr = server.local_addr();
    let serving = std::thread::spawn(move || server.serve());
    println!("daemon listening on {addr} (port 0 bind; kernel-assigned)");

    let mut client = Client::connect(addr)?;
    println!(
        "handshake ok: v{}, {} resident users\n",
        reap::serve::PROTOCOL_VERSION,
        client.users()
    );

    // Stream user 7's first simulated day into the resident state.
    let mut granted = 0.0f64;
    for (hour, harvested) in trace.iter().take(24).enumerate() {
        let reply = client.request(&Request::Observe {
            user: 7,
            hour: hour as u32,
            harvest_j: harvested.joules(),
            activity: Some(0.2),
            seq: None,
        })?;
        match reply {
            Response::Observed { budget_j, .. } => granted += budget_j,
            other => return Err(format!("unexpected reply: {other:?}").into()),
        }
    }
    println!("streamed 24 observations for user 7; {granted:.2} J granted in total");

    // Serve an allocation decision for the upcoming hour — a cached
    // frontier walk on the server, no LP solve.
    match client.request(&Request::Decide { user: 7 })? {
        Response::Decision {
            budget_j,
            accuracy,
            shares,
            off_s,
            ..
        } => {
            println!("decision for user 7 at {budget_j:.3} J: accuracy {accuracy:.3}");
            for s in &shares {
                println!("  run point {} for {:.0} s", s.id, s.seconds);
            }
            println!("  off for {off_s:.0} s");
        }
        other => return Err(format!("unexpected reply: {other:?}").into()),
    }

    // Fleet statistics: the `fleet` half is deterministic (pure function
    // of the observation stream); the `server` half is request-path
    // metrics.
    match client.request(&Request::Stats)? {
        Response::Stats { fleet, server } => {
            println!(
                "\nstats: {} users / {} cohorts, {} observations, digest {:016x}",
                fleet.users, fleet.cohorts, fleet.observations, fleet.state_digest
            );
            println!(
                "       {} requests served, decide p99 {:.0} us",
                server.requests, server.decide_p99_us
            );
        }
        other => return Err(format!("unexpected reply: {other:?}").into()),
    }

    // Checkpoint the whole population to a versioned binary snapshot.
    let dir = std::env::temp_dir().join(format!("serve_client_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let ckpt = dir.join("fleet.snap");
    match client.request(&Request::Checkpoint {
        path: ckpt.display().to_string(),
    })? {
        Response::CheckpointDone { bytes, .. } => {
            println!("\ncheckpoint written: {bytes} bytes at {}", ckpt.display());
        }
        other => return Err(format!("unexpected reply: {other:?}").into()),
    }

    // Graceful in-band shutdown: the server acknowledges, drains, exits.
    match client.request(&Request::Shutdown)? {
        Response::ShuttingDown => println!("server acknowledged shutdown"),
        other => return Err(format!("unexpected reply: {other:?}").into()),
    }
    serving.join().expect("server thread")?;
    std::fs::remove_dir_all(&dir).ok();
    println!("server drained; session complete");
    Ok(())
}
