//! Month-long solar case study (the paper's Sec. 5.4): run REAP and the
//! static design points over a September-like month of harvested energy
//! and compare realized performance.
//!
//! ```text
//! cargo run --release --example solar_month
//! ```

use reap::harvest::HarvestTrace;
use reap::sim::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = HarvestTrace::september_like(2019);
    println!(
        "September-like month at Golden, CO: {} days, {:.0} J total harvest, {:.2} J peak hour\n",
        trace.days(),
        trace.total().joules(),
        trace.peak().joules()
    );

    let scenario = Scenario::builder(trace)
        .points(reap::device::paper_table2_operating_points())
        .alpha(1.0)
        .build()?;

    let (reap_report, statics) = scenario.run_all()?;

    println!("{reap_report}");
    for s in &statics {
        println!("{s}");
    }

    println!("\nper-policy summary (alpha = 1):");
    println!(
        "  {:<6} {:>10} {:>12} {:>12} {:>10}",
        "policy", "J total", "accuracy", "active (h)", "brownouts"
    );
    let mut rows = vec![&reap_report];
    rows.extend(statics.iter());
    for r in rows {
        println!(
            "  {:<6} {:>10.1} {:>11.1}% {:>12.1} {:>10}",
            r.policy_name(),
            r.total_objective(1.0),
            r.mean_accuracy() * 100.0,
            r.total_active_time().hours(),
            r.brownout_hours()
        );
    }

    println!("\nREAP normalized to each static policy (per-day min/mean/max):");
    for s in &statics {
        if let Some((min, mean, max)) = reap_report.normalized_daily(s, 1.0) {
            println!(
                "  vs {:<4} {min:.2} / {mean:.2} / {max:.2}",
                s.policy_name()
            );
        }
    }
    Ok(())
}
