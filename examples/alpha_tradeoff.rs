//! The accuracy/active-time trade-off knob: how the optimal schedule
//! shifts from low-power points toward high-accuracy points as `alpha`
//! grows (Sec. 5.3 of the paper), at a fixed 5 J budget.
//!
//! ```text
//! cargo run --release --example alpha_tradeoff
//! ```

use reap::core::ReapProblem;
use reap::units::Energy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let points = reap::device::paper_table2_operating_points();
    let base = ReapProblem::builder().points(points).build()?;
    let budget = Energy::from_joules(5.0);

    println!("budget: 5 J over one hour; schedules by alpha\n");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9}",
        "alpha", "DP1 %", "DP2 %", "DP3 %", "DP4 %", "DP5 %", "off %", "E[acc] %", "active %"
    );
    for alpha in [0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 4.0, 8.0, 16.0] {
        let problem = base.with_alpha(alpha);
        let s = problem.solve(budget)?;
        let frac = |id: u8| s.fraction_for(id) * 100.0;
        println!(
            "{:>6} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>10.1} {:>9.1}",
            alpha,
            frac(1),
            frac(2),
            frac(3),
            frac(4),
            frac(5),
            (1.0 - s.active_fraction()) * 100.0,
            s.expected_accuracy() * 100.0,
            s.active_fraction() * 100.0,
        );
    }

    println!("\nreading: alpha = 0 maximizes active time (cheapest point wins);");
    println!("alpha = 1 maximizes expected accuracy (DP4/DP5 mix at this budget);");
    println!("large alpha sacrifices active time for the high-accuracy points.");
    Ok(())
}
