//! Runtime adaptation: the controller re-plans every hour as harvesting
//! conditions swing, and the user changes the accuracy/active-time
//! preference (`alpha`) mid-day — the scenario motivating Sec. 3.3's
//! "it is important to solve this problem at runtime".
//!
//! ```text
//! cargo run --release --example runtime_adaptation
//! ```

use reap::core::ReapController;
use reap::units::Energy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = reap::core::ReapProblem::builder()
        .points(reap::device::paper_table2_operating_points())
        .build()?;
    let mut controller = ReapController::new(problem);

    // A stormy afternoon: budgets collapse, then the sun returns.
    let hours: [(&str, f64); 8] = [
        ("09:00 clear", 6.5),
        ("10:00 clear", 8.0),
        ("11:00 clouds roll in", 4.0),
        ("12:00 storm", 1.2),
        ("13:00 storm", 0.8),
        ("14:00 clearing", 3.0),
        ("15:00 clear", 7.0),
        ("16:00 clear", 6.0),
    ];

    println!("morning: user wants maximum expected accuracy (alpha = 1)\n");
    for (label, joules) in &hours[..4] {
        let schedule = controller.plan(Energy::from_joules(*joules))?;
        report(label, *joules, &schedule);
    }

    println!("\n13:00: physician requests high-confidence data -> alpha = 4\n");
    controller.set_alpha(4.0)?;
    for (label, joules) in &hours[4..] {
        let schedule = controller.plan(Energy::from_joules(*joules))?;
        report(label, *joules, &schedule);
    }

    println!(
        "\ncontroller produced {} plans; each solve is microseconds on a host",
        controller.plans_made()
    );
    println!("and ~1.5 ms on the paper's 47 MHz MCU — negligible against TP = 1 h.");
    Ok(())
}

fn report(label: &str, joules: f64, schedule: &reap::core::Schedule) {
    let mix: Vec<String> = schedule
        .allocations()
        .iter()
        .map(|a| {
            format!(
                "{} {:.0}%",
                a.point.label(),
                (a.duration / schedule.period()) * 100.0
            )
        })
        .collect();
    println!(
        "{label:<22} {joules:>4.1} J -> [{}] E[acc] {:.1}%, active {:.0}%",
        mix.join(", "),
        schedule.expected_accuracy() * 100.0,
        schedule.active_fraction() * 100.0
    );
}
