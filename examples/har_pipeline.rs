//! End-to-end HAR pipeline: synthesize the 14-user study, train the five
//! Pareto design points, and characterize them on the device model —
//! the "model mode" equivalent of the paper's Table 2.
//!
//! ```text
//! cargo run --release --example har_pipeline
//! ```

use reap::data::Dataset;
use reap::device::characterize;
use reap::har::{train_classifier, DesignPoint, DpConfig, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating the synthetic 14-user study (3553 windows)...");
    let dataset = Dataset::user_study(42);
    let counts = dataset.class_counts();
    println!("class counts: {counts:?}\n");

    let train_config = TrainConfig {
        seed: 42,
        ..TrainConfig::default()
    };

    println!("training the five Pareto design points:\n");
    let paper_accuracy = [0.94, 0.93, 0.92, 0.90, 0.76];
    for (i, config) in DpConfig::paper_pareto_5().iter().enumerate() {
        let trained = train_classifier(&dataset, config, &train_config)?;
        let point = DesignPoint::new(i as u8 + 1, config.clone(), trained.test_accuracy)?;
        let characterized = characterize(&point);
        println!(
            "DP{}: accuracy {:.1}% (paper: {:.0}%), validation {:.1}%  | {:.2} mJ/activity, {:.2} mW",
            i + 1,
            trained.test_accuracy * 100.0,
            paper_accuracy[i] * 100.0,
            trained.validation_accuracy * 100.0,
            characterized.total_energy().millijoules(),
            characterized.average_power.milliwatts(),
        );
        if i == 0 {
            println!("\nDP1 confusion matrix (test partition):");
            println!("{}\n", trained.confusion);
            if let Some((t, p, n)) = trained.confusion.worst_confusion() {
                println!("most confused pair: {t} mistaken for {p} ({n} windows)\n");
            }
        }
    }
    Ok(())
}
