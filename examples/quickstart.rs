//! Quickstart: plan an hour of operation under a harvested-energy budget.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use reap::core::{static_schedule, ReapProblem};
use reap::units::{Energy, Power, TimeSpan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The five Pareto-optimal design points of the paper's Table 2,
    // with published accuracies and power draws.
    let points = reap::device::paper_table2_operating_points();

    // One-hour activity period, 50 uW off-state draw, alpha = 1
    // (maximize expected accuracy).
    let problem = ReapProblem::builder()
        .period(TimeSpan::from_hours(1.0))
        .off_power(Power::from_microwatts(50.0))
        .alpha(1.0)
        .points(points)
        .build()?;

    println!("REAP quickstart: one hour, five design points\n");
    for joules in [1.0, 3.0, 5.0, 7.0, 10.0] {
        let budget = Energy::from_joules(joules);
        let schedule = problem.solve(budget)?;
        println!("budget {joules:.1} J:");
        println!("{schedule}");

        // Compare with the best static design point at this budget.
        let best_static = problem
            .points()
            .iter()
            .map(|p| static_schedule(&problem, p.id(), budget).expect("valid"))
            .max_by(|a, b| {
                a.objective(1.0)
                    .partial_cmp(&b.objective(1.0))
                    .expect("finite")
            })
            .expect("non-empty");
        println!(
            "  vs best static: REAP J = {:.3}, best static J = {:.3}\n",
            schedule.objective(1.0),
            best_static.objective(1.0)
        );
    }
    Ok(())
}
