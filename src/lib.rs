//! # REAP — Runtime Energy-Accuracy Optimization for Energy-Harvesting IoT
//!
//! This crate is the facade of a full reproduction of *REAP: Runtime
//! Energy-Accuracy Optimization for Energy Harvesting IoT Devices* (Bhat,
//! Bagewadi, Lee, Ogras — DAC 2019). It re-exports every subsystem crate so
//! applications can depend on a single package.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use reap::core::{ReapProblem, OperatingPoint};
//! use reap::units::{Energy, Power, TimeSpan};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The five Pareto-optimal design points of the paper's Table 2.
//! let points = reap::device::paper_table2_operating_points();
//!
//! // Plan one hour under a 5 J harvested-energy budget (alpha = 1:
//! // maximize expected accuracy).
//! let problem = ReapProblem::builder()
//!     .period(TimeSpan::from_hours(1.0))
//!     .off_power(Power::from_microwatts(50.0))
//!     .alpha(1.0)
//!     .points(points)
//!     .build()?;
//! let schedule = problem.solve(Energy::from_joules(5.0))?;
//!
//! // The paper reports the optimizer splits the hour between DP4 (42%)
//! // and DP5 (58%) at this budget.
//! assert!(schedule.expected_accuracy() > 0.80);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Physical-quantity newtypes (energy, power, time). Re-export of [`reap_units`].
pub mod units {
    pub use reap_units::*;
}

/// Simplex LP solver substrate. Re-export of [`reap_lp`].
pub mod lp {
    pub use reap_lp::*;
}

/// DSP kernels (FFT, DWT, statistics). Re-export of [`reap_dsp`].
pub mod dsp {
    pub use reap_dsp::*;
}

/// Synthetic user-study data generation. Re-export of [`reap_data`].
pub mod data {
    pub use reap_data::*;
}

/// Human activity recognition pipeline. Re-export of [`reap_har`].
pub mod har {
    pub use reap_har::*;
}

/// Device energy/timing model. Re-export of [`reap_device`].
pub mod device {
    pub use reap_device::*;
}

/// Energy-harvesting substrate. Re-export of [`reap_harvest`].
pub mod harvest {
    pub use reap_harvest::*;
}

/// The REAP optimizer and runtime controller. Re-export of [`reap_core`].
pub mod core {
    pub use reap_core::*;
}

/// Full-system simulator. Re-export of [`reap_sim`].
pub mod sim {
    pub use reap_sim::*;
}

/// Resident fleet-as-a-service policy daemon. Re-export of [`reap_serve`].
pub mod serve {
    pub use reap_serve::*;
}

/// The types most applications need, in one import.
///
/// ```
/// use reap::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let problem = ReapProblem::builder()
///     .points(reap::device::paper_table2_operating_points())
///     .build()?;
/// let schedule = problem.solve(Energy::from_joules(5.0))?;
/// assert!(schedule.expected_accuracy() > 0.8);
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use reap_core::{
        static_schedule, OperatingPoint, ReapController, ReapError, ReapProblem, Schedule,
    };
    pub use reap_harvest::HarvestTrace;
    pub use reap_sim::{Policy, Scenario};
    pub use reap_units::{Energy, Power, TimeSpan};
}
